// Provenance audit reports: renders a run's SpanCollector record as human
// tables or a machine-readable document ("lap-explain-v1" schema).
//
// Three sections, all derived purely from integer-nanosecond span state so
// every byte of the output is deterministic (the golden test pins a full
// report):
//   - latency breakdown: per-stage percentile tables for prefetch flights
//     (disk queue/service, net wait/wire, unattributed, residence) and
//     demand reads split by service class;
//   - wasted attribution: which predictor issued the blocks that were never
//     used, and why each was wasted (evicted, invalidated, superseded, ...);
//   - block chain: the full causal story of one (file, block) — who
//     predicted it, which access triggered the decision, where its
//     nanoseconds went, how it settled.
// The report header always reconciles span totals against the run's own
// prefetch counters; a mismatch is rendered loudly (and is a bug — the
// lap_check fuzzer asserts this equality on every scenario).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "util/block.hpp"

namespace lap {

class SpanCollector;
struct RunResult;

struct ExplainOptions {
  bool latency = false;           // --latency-breakdown
  bool wasted = false;            // --wasted
  std::optional<BlockKey> block;  // --block <file>:<index>
  bool json = false;              // --json

  /// With no section selected, the report includes every aggregate section
  /// (latency + wasted); --block is always opt-in.
  [[nodiscard]] bool show_latency() const {
    return latency || (!wasted && !block.has_value());
  }
  [[nodiscard]] bool show_wasted() const {
    return wasted || (!latency && !block.has_value());
  }
};

/// Parse a "<file>:<index>" block query (both parts decimal, e.g. "3:17").
/// nullopt on malformed input.
[[nodiscard]] std::optional<BlockKey> parse_block_query(
    const std::string& text);

/// Render the audit report for one finished run.
void write_explain(std::ostream& os, const SpanCollector& spans,
                   const RunResult& run, const ExplainOptions& opts);

}  // namespace lap
