// Bench output: every figure/table reproduction prints through these so the
// whole harness reads uniformly (rows = algorithms, columns = cache sizes,
// exactly the series the paper plots).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/simulation.hpp"
#include "driver/sweep.hpp"

namespace lap {

/// Figure banner: what is reproduced, on which machine, from which trace.
void print_experiment_header(std::ostream& os, const std::string& title,
                             const MachineConfig& machine, const Trace& trace,
                             const RunConfig& base);

/// Figures 4-7: average read time (ms) per algorithm and cache size.
void print_read_time_series(std::ostream& os, const SweepSpec& spec,
                            const std::vector<RunResult>& results);

/// Figures 8-11: disk accesses per algorithm and cache size (plus the
/// read/write split the paper discusses).
void print_disk_access_series(std::ostream& os, const SweepSpec& spec,
                              const std::vector<RunResult>& results);

/// Table 2: average number of times a block is written to disk.
void print_writes_per_block_table(std::ostream& os, const SweepSpec& spec,
                                  const std::vector<RunResult>& results);

/// Supporting diagnostics (hit ratios, prefetch volumes, mis-predictions).
void print_diagnostics(std::ostream& os, const SweepSpec& spec,
                       const std::vector<RunResult>& results);

/// One-line summary of a single run (quickstart/example output).
void print_run_summary(std::ostream& os, const RunResult& r);

/// Machine-readable dump of a sweep: one row per run with every metric,
/// suitable for gnuplot/pandas.  Columns:
///   fs,algorithm,cache_mb,avg_read_ms,p95_read_ms,hit_ratio,
///   disk_reads,disk_writes,disk_accesses,prefetched,fallback,
///   misprediction_ratio,writes_per_block,sim_seconds
void write_results_csv(std::ostream& os, const std::vector<RunResult>& results);

class CounterRegistry;
struct RunManifest;

/// JSON twin of write_results_csv: the obs metrics document (manifest +
/// one "runs" row per result + optional final counter values).
void write_results_json(std::ostream& os, const RunManifest& manifest,
                        const std::vector<RunResult>& results,
                        const CounterRegistry* registry = nullptr);

}  // namespace lap
