#include "driver/machine_config.hpp"

#include <sstream>
#include <string>

namespace lap {

MachineConfig MachineConfig::pm() {
  MachineConfig m;
  m.name = "PM";
  m.nodes = 128;
  m.block_size = 8_KiB;
  m.net.local_port_startup = SimTime::us(2);
  m.net.remote_port_startup = SimTime::us(10);
  m.net.local_copy_startup = SimTime::us(1);
  m.net.remote_copy_startup = SimTime::us(5);
  m.net.memory_bw = Bandwidth::mb_per_s(500);
  m.net.network_bw = Bandwidth::mb_per_s(200);
  m.disks = 16;
  m.disk.block_size = 8_KiB;
  m.disk.bandwidth = Bandwidth::mb_per_s(10);
  m.disk.read_seek = SimTime::ms(10.5);
  m.disk.write_seek = SimTime::ms(12.5);
  m.disk.completion_latency = SimTime::us(20);
  return m;
}

MachineConfig MachineConfig::now() {
  MachineConfig m;
  m.name = "NOW";
  m.nodes = 50;
  m.block_size = 8_KiB;
  m.net.local_port_startup = SimTime::us(50);
  m.net.remote_port_startup = SimTime::us(100);
  m.net.local_copy_startup = SimTime::us(25);
  m.net.remote_copy_startup = SimTime::us(50);
  m.net.memory_bw = Bandwidth::mb_per_s(40);
  m.net.network_bw = Bandwidth::mb_per_s(19.4);
  m.disks = 8;
  m.disk.block_size = 8_KiB;
  m.disk.bandwidth = Bandwidth::mb_per_s(10);
  m.disk.read_seek = SimTime::ms(10.5);
  m.disk.write_seek = SimTime::ms(12.5);
  m.disk.completion_latency = SimTime::us(20);
  return m;
}

std::string MachineConfig::describe() const {
  std::ostringstream os;
  os << name << ": " << nodes << " nodes, " << block_size / 1024
     << " KB blocks, mem " << net.memory_bw.bytes_per_sec() / 1e6
     << " MB/s, net " << net.network_bw.bytes_per_sec() / 1e6
     << " MB/s, startups local/remote " << net.local_port_startup.micros()
     << "/" << net.remote_port_startup.micros() << " us, copies "
     << net.local_copy_startup.micros() << "/"
     << net.remote_copy_startup.micros() << " us, " << disks << " disks @ "
     << disk.bandwidth.bytes_per_sec() / 1e6 << " MB/s, seeks R/W "
     << disk.read_seek.millis() << "/" << disk.write_seek.millis() << " ms";
  return os.str();
}

}  // namespace lap
