#include "driver/explain.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "driver/simulation.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "util/table.hpp"

namespace lap {
namespace {

constexpr PrefetchOrigin kOrigins[] = {
    PrefetchOrigin::kGraph, PrefetchOrigin::kFallback,
    PrefetchOrigin::kSequential, PrefetchOrigin::kHint,
    PrefetchOrigin::kWholeFile};
constexpr WasteReason kReasons[] = {
    WasteReason::kEvicted,    WasteReason::kInvalidated,
    WasteReason::kDeleted,    WasteReason::kSuperseded,
    WasteReason::kForwardDropped, WasteReason::kShutdown};
constexpr DemandClass kClasses[] = {DemandClass::kHitLocal,
                                    DemandClass::kHitRemote,
                                    DemandClass::kHitInflight,
                                    DemandClass::kMiss};

[[nodiscard]] double to_ms(std::int64_t ns) {
  return static_cast<double>(ns) / 1e6;
}
[[nodiscard]] double to_ms(SimTime t) { return to_ms(t.nanos()); }

/// One latency population: integer-nanosecond samples, summarised with
/// exact nearest-rank percentiles (no bucketing), so the rendered numbers
/// are bit-stable across platforms.
struct StagePop {
  std::string name;
  std::vector<std::int64_t> ns;

  void add(SimTime t) { ns.push_back(t.nanos()); }

  [[nodiscard]] std::int64_t pct(double q) const {
    if (ns.empty()) return 0;
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(ns.size())));
    return ns[rank == 0 ? 0 : rank - 1];
  }
  [[nodiscard]] double mean_ms() const {
    if (ns.empty()) return 0.0;
    std::int64_t total = 0;
    for (const std::int64_t v : ns) total += v;
    return to_ms(total) / static_cast<double>(ns.size());
  }

  void finish() { std::sort(ns.begin(), ns.end()); }

  void add_row(Table& table) const {
    table.add_row({name, std::to_string(ns.size()), fmt_double(mean_ms(), 3),
                   fmt_double(to_ms(pct(0.50)), 3),
                   fmt_double(to_ms(pct(0.90)), 3),
                   fmt_double(to_ms(pct(0.99)), 3),
                   fmt_double(ns.empty() ? 0.0 : to_ms(ns.back()), 3)});
  }
  void write_json(JsonWriter& w, const char* label_key) const {
    w.begin_object();
    w.member(label_key, name);
    w.member("count", static_cast<std::uint64_t>(ns.size()));
    w.member("mean_ms", mean_ms());
    w.member("p50_ms", to_ms(pct(0.50)));
    w.member("p90_ms", to_ms(pct(0.90)));
    w.member("p99_ms", to_ms(pct(0.99)));
    w.member("max_ms", ns.empty() ? 0.0 : to_ms(ns.back()));
    w.end_object();
  }
};

/// The two percentile table families, built in one pass over the spans.
/// Stage membership mirrors SpanCollector::publish() exactly: disk stages
/// only when the span actually touched a disk, net stages only when it
/// crossed the wire, so a stage's count tells you how many flights it
/// participated in.
struct LatencyReport {
  StagePop pf[7] = {{"in_flight", {}}, {"disk_queue", {}}, {"disk", {}},
                    {"net_wait", {}},  {"net", {}},        {"other", {}},
                    {"residence", {}}};
  StagePop dm[5] = {{"hit_local", {}},
                    {"hit_remote", {}},
                    {"hit_inflight", {}},
                    {"miss", {}},
                    {"all", {}}};

  explicit LatencyReport(const SpanCollector& spans) {
    for (const BlockSpan& s : spans.spans()) {
      if (s.demand) {
        if (s.outcome == SpanOutcome::kOpen) continue;
        const SimTime total = s.settled - s.predicted;
        if (s.demand_class != DemandClass::kUnclassified) {
          dm[static_cast<std::size_t>(s.demand_class) - 1].add(total);
        }
        dm[4].add(total);
        continue;
      }
      if (s.outcome != SpanOutcome::kUsed &&
          s.outcome != SpanOutcome::kWasted) {
        continue;  // elided or still open: no flight to attribute
      }
      pf[0].add(s.in_flight());
      if (s.disk_service > SimTime::zero()) {
        pf[1].add(s.disk_wait);
        pf[2].add(s.disk_service);
      }
      if (s.net_hops > 0) {
        pf[3].add(s.net_wait);
        pf[4].add(s.net_time);
      }
      pf[5].add(s.other());
      pf[6].add(s.residence());
    }
    for (StagePop& p : pf) p.finish();
    for (StagePop& p : dm) p.finish();
  }
};

/// Wasted-prefetch attribution: origin rows x waste-reason columns.
struct WasteReport {
  std::uint64_t predicted[std::size(kOrigins)] = {};
  std::uint64_t used[std::size(kOrigins)] = {};
  std::uint64_t wasted[std::size(kOrigins)] = {};
  std::uint64_t reason[std::size(kOrigins)][std::size(kReasons)] = {};

  explicit WasteReport(const SpanCollector& spans) {
    for (const BlockSpan& s : spans.spans()) {
      if (s.demand) continue;
      const auto oi = static_cast<std::size_t>(s.origin);
      ++predicted[oi];
      if (s.outcome == SpanOutcome::kUsed) ++used[oi];
      if (s.outcome == SpanOutcome::kWasted) {
        ++wasted[oi];
        if (s.waste != WasteReason::kNone) {
          ++reason[oi][static_cast<std::size_t>(s.waste) - 1];
        }
      }
    }
  }
};

[[nodiscard]] std::string site_name(std::uint32_t site) {
  // PAFS keeps all prefetch state on the file's server (site 0 = the global
  // manager); xFS managers are per node.
  return site == 0 ? "server" : "node " + std::to_string(site - 1);
}

void write_block_chain_text(std::ostream& os, const SpanCollector& spans,
                            BlockKey key) {
  std::size_t matched = 0;
  for (std::size_t i = 0; i < spans.spans().size(); ++i) {
    const BlockSpan& s = spans.spans()[i];
    if (s.key != key) continue;
    ++matched;
    os << "  span #" << (i + 1) << ": ";
    if (s.demand) {
      os << "demand read by node " << raw(s.target) << "\n"
         << "    started    t=" << fmt_double(to_ms(s.predicted), 3)
         << " ms\n"
         << "    class      " << to_string(s.demand_class) << "\n";
    } else {
      os << "prefetch [" << to_string(s.origin) << "] by "
         << site_name(s.site) << " for node " << raw(s.target) << "\n"
         << "    predicted  t=" << fmt_double(to_ms(s.predicted), 3)
         << " ms  (trigger pid " << s.trigger_pid << ", ";
      if (s.trigger_block < 0) {
        os << "open)\n";
      } else {
        os << "block " << s.trigger_block << ")\n";
      }
    }
    if (s.disk_service > SimTime::zero()) {
      os << "    disk       wait " << fmt_double(to_ms(s.disk_wait), 3)
         << " ms, service " << fmt_double(to_ms(s.disk_service), 3)
         << " ms\n";
    }
    if (s.net_hops > 0) {
      os << "    net        wait " << fmt_double(to_ms(s.net_wait), 3)
         << " ms, " << s.net_hops << " hop(s), "
         << fmt_double(to_ms(s.net_time), 3) << " ms\n";
    }
    if (!s.demand && s.arrived != SimTime::zero()) {
      os << "    arrived    t=" << fmt_double(to_ms(s.arrived), 3) << " ms ("
         << (s.via_peer ? "from peer cache" : "from disk") << ", in flight "
         << fmt_double(to_ms(s.in_flight()), 3) << " ms)\n";
    }
    os << "    outcome    ";
    switch (s.outcome) {
      case SpanOutcome::kOpen:
        os << "open (never settled)\n";
        break;
      case SpanOutcome::kUsed:
        os << "used t=" << fmt_double(to_ms(s.settled), 3)
           << " ms (residence " << fmt_double(to_ms(s.residence()), 3)
           << " ms)\n";
        break;
      case SpanOutcome::kWasted:
        os << "wasted [" << to_string(s.waste)
           << "] t=" << fmt_double(to_ms(s.settled), 3) << " ms (residence "
           << fmt_double(to_ms(s.residence()), 3) << " ms)\n";
        break;
      case SpanOutcome::kElided:
        os << "elided t=" << fmt_double(to_ms(s.settled), 3)
           << " ms (already available)\n";
        break;
      case SpanOutcome::kDemand:
        os << "done t=" << fmt_double(to_ms(s.settled), 3) << " ms (total "
           << fmt_double(to_ms(s.settled - s.predicted), 3) << " ms)\n";
        break;
    }
  }
  if (matched == 0) {
    os << "  no spans recorded for this block\n";
  }
}

void write_block_chain_json(JsonWriter& w, const SpanCollector& spans,
                            BlockKey key) {
  w.begin_object();
  w.member("file", static_cast<std::uint64_t>(raw(key.file)));
  w.member("index", static_cast<std::uint64_t>(key.index));
  w.key("spans");
  w.begin_array();
  for (std::size_t i = 0; i < spans.spans().size(); ++i) {
    const BlockSpan& s = spans.spans()[i];
    if (s.key != key) continue;
    w.begin_object();
    w.member("ref", static_cast<std::uint64_t>(i + 1));
    w.member("kind", s.demand ? "demand" : "prefetch");
    w.member("site", static_cast<std::uint64_t>(s.site));
    if (!s.demand) {
      w.member("origin", to_string(s.origin));
      w.member("fallback", s.fallback);
      w.member("trigger_pid", static_cast<std::uint64_t>(s.trigger_pid));
      w.member("trigger_block", static_cast<std::int64_t>(s.trigger_block));
    }
    w.member("target", static_cast<std::uint64_t>(raw(s.target)));
    w.member("predicted_ms", to_ms(s.predicted));
    w.member("arrived_ms", to_ms(s.arrived));
    w.member("settled_ms", to_ms(s.settled));
    w.member("disk_wait_ms", to_ms(s.disk_wait));
    w.member("disk_service_ms", to_ms(s.disk_service));
    w.member("net_wait_ms", to_ms(s.net_wait));
    w.member("net_ms", to_ms(s.net_time));
    w.member("net_hops", static_cast<std::uint64_t>(s.net_hops));
    w.member("via_peer", s.via_peer);
    w.member("outcome", to_string(s.outcome));
    w.member("waste", to_string(s.waste));
    w.member("class", to_string(s.demand_class));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_text(std::ostream& os, const SpanCollector& spans,
                const RunResult& run, const ExplainOptions& opts) {
  const SpanCollector::Totals t = spans.totals();
  os << "prefetch provenance — " << run.fs << " " << run.algorithm
     << ", cache "
     << fmt_double(static_cast<double>(run.cache_per_node) / (1024.0 * 1024.0),
                   1)
     << " MiB/node\n";
  os << "spans: " << t.predicted << " predicted (" << t.elided << " elided), "
     << t.arrived << " arrived, " << t.used << " used, " << t.wasted
     << " wasted; " << t.demand_blocks << " demand blocks\n";
  const bool ok = t.arrived == run.prefetch_arrived &&
                  t.used == run.prefetch_used &&
                  t.wasted == run.prefetch_wasted;
  os << "reconciliation: run counters arrived/used/wasted = "
     << run.prefetch_arrived << "/" << run.prefetch_used << "/"
     << run.prefetch_wasted << " — " << (ok ? "OK" : "MISMATCH") << "\n";

  if (opts.show_latency()) {
    const LatencyReport lat(spans);
    os << "\nprefetch latency breakdown (ms)\n";
    Table pf({"stage", "count", "mean", "p50", "p90", "p99", "max"});
    for (const StagePop& p : lat.pf) p.add_row(pf);
    pf.print(os);
    os << "\ndemand latency breakdown (ms)\n";
    Table dm({"class", "count", "mean", "p50", "p90", "p99", "max"});
    for (const StagePop& p : lat.dm) p.add_row(dm);
    dm.print(os);
  }

  if (opts.show_wasted()) {
    const WasteReport wr(spans);
    os << "\nwasted-prefetch attribution (" << t.wasted << " wasted of "
       << t.arrived << " arrived)\n";
    std::vector<std::string> header = {"origin", "predicted", "used",
                                       "wasted"};
    for (const WasteReason r : kReasons) header.emplace_back(to_string(r));
    Table table(std::move(header));
    for (std::size_t oi = 0; oi < std::size(kOrigins); ++oi) {
      std::vector<std::string> row = {to_string(kOrigins[oi]),
                                      std::to_string(wr.predicted[oi]),
                                      std::to_string(wr.used[oi]),
                                      std::to_string(wr.wasted[oi])};
      for (std::size_t ri = 0; ri < std::size(kReasons); ++ri) {
        row.push_back(std::to_string(wr.reason[oi][ri]));
      }
      table.add_row(std::move(row));
    }
    table.print(os);
  }

  if (opts.block) {
    os << "\nblock " << raw(opts.block->file) << ":" << opts.block->index
       << "\n";
    write_block_chain_text(os, spans, *opts.block);
  }
}

void write_json(std::ostream& os, const SpanCollector& spans,
                const RunResult& run, const ExplainOptions& opts) {
  const SpanCollector::Totals t = spans.totals();
  JsonWriter w(os);
  w.begin_object();
  w.member("schema", "lap-explain-v1");
  w.key("run");
  w.begin_object();
  w.member("fs", run.fs);
  w.member("algorithm", run.algorithm);
  w.member("cache_per_node_bytes", static_cast<std::uint64_t>(
                                       run.cache_per_node));
  w.end_object();
  w.key("totals");
  w.begin_object();
  w.member("predicted", t.predicted);
  w.member("elided", t.elided);
  w.member("arrived", t.arrived);
  w.member("used", t.used);
  w.member("wasted", t.wasted);
  w.member("demand_blocks", t.demand_blocks);
  w.end_object();
  w.key("reconciliation");
  w.begin_object();
  w.member("run_arrived", run.prefetch_arrived);
  w.member("run_used", run.prefetch_used);
  w.member("run_wasted", run.prefetch_wasted);
  w.member("match", t.arrived == run.prefetch_arrived &&
                        t.used == run.prefetch_used &&
                        t.wasted == run.prefetch_wasted);
  w.end_object();

  if (opts.show_latency()) {
    const LatencyReport lat(spans);
    w.key("latency");
    w.begin_object();
    w.key("prefetch");
    w.begin_array();
    for (const StagePop& p : lat.pf) p.write_json(w, "stage");
    w.end_array();
    w.key("demand");
    w.begin_array();
    for (const StagePop& p : lat.dm) p.write_json(w, "class");
    w.end_array();
    w.end_object();
  }

  if (opts.show_wasted()) {
    const WasteReport wr(spans);
    w.key("wasted");
    w.begin_array();
    for (std::size_t oi = 0; oi < std::size(kOrigins); ++oi) {
      w.begin_object();
      w.member("origin", to_string(kOrigins[oi]));
      w.member("predicted", wr.predicted[oi]);
      w.member("used", wr.used[oi]);
      w.member("wasted", wr.wasted[oi]);
      w.key("reasons");
      w.begin_object();
      for (std::size_t ri = 0; ri < std::size(kReasons); ++ri) {
        w.member(to_string(kReasons[ri]), wr.reason[oi][ri]);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
  }

  if (opts.block) {
    w.key("block");
    write_block_chain_json(w, spans, *opts.block);
  }
  w.end_object();
  os << "\n";
}

}  // namespace

std::optional<BlockKey> parse_block_query(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == 0 || colon == std::string::npos || colon + 1 == text.size()) {
    return std::nullopt;
  }
  std::uint32_t file = 0;
  std::uint32_t index = 0;
  const char* const begin = text.data();
  const char* const mid = begin + colon;
  const char* const end = begin + text.size();
  const auto [fp, fe] = std::from_chars(begin, mid, file);
  if (fe != std::errc{} || fp != mid) return std::nullopt;
  const auto [ip, ie] = std::from_chars(mid + 1, end, index);
  if (ie != std::errc{} || ip != end) return std::nullopt;
  return BlockKey{FileId{file}, index};
}

void write_explain(std::ostream& os, const SpanCollector& spans,
                   const RunResult& run, const ExplainOptions& opts) {
  if (opts.json) {
    write_json(os, spans, run, opts);
  } else {
    write_text(os, spans, run, opts);
  }
}

}  // namespace lap
