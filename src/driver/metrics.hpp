// Central metrics sink for one simulation run.
//
// Latency/traffic counters honour the warm-up boundary: nothing is recorded
// until `warmup_ops` user I/O operations have been issued (the paper warms
// its caches on the first hours of each trace and measures the rest).
// Prefetch-effectiveness counters are whole-run: a mis-prediction ratio is
// a property of the algorithm, not of the measurement window.
#pragma once

#include <cstdint>

#include "cache/block.hpp"
#include "util/flat_hash.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace lap {

class Metrics {
 public:
  Metrics() : read_hist_(1e-3, 1e5, 96) {}

  /// Begin measuring after this many issued I/O ops (0 = measure from t0).
  void set_warmup_ops(std::uint64_t n) { warmup_ops_ = n; }

  /// Called by the client layer as each READ/WRITE is issued.
  void on_io_issued(SimTime now) {
    ++issued_ops_;
    if (!measuring_ && issued_ops_ > warmup_ops_) {
      measuring_ = true;
      measure_start_ = now;
    }
  }

  [[nodiscard]] bool measuring() const { return measuring_; }
  [[nodiscard]] SimTime measure_start() const { return measure_start_; }

  // --- client-observed latencies ---
  void on_read_done(SimTime latency) {
    if (!measuring_) return;
    read_ms_.add(latency.millis());
    read_hist_.add(latency.millis());
  }
  void on_write_done(SimTime latency) {
    if (measuring_) write_ms_.add(latency.millis());
  }

  // --- cache outcome classification (per demand block) ---
  void on_hit_local() { if (measuring_) ++hits_local_; }
  void on_hit_remote() { if (measuring_) ++hits_remote_; }
  void on_hit_inflight() { if (measuring_) ++hits_inflight_; }
  void on_miss() { if (measuring_) ++misses_; }

  // --- disk traffic ---
  void on_disk_read(bool prefetch) {
    if (!measuring_) return;
    ++disk_reads_;
    if (prefetch) ++disk_prefetch_reads_;
  }
  void on_disk_write(BlockKey key) {
    if (!measuring_) return;
    ++disk_writes_;
    ++block_write_counts_[key];
  }

  // --- prefetch effectiveness (whole-run) ---
  void on_prefetch_arrived() { ++prefetch_arrived_; }
  void on_prefetch_first_use() { ++prefetch_used_; }
  void on_prefetch_wasted() { ++prefetch_wasted_; }

  // --- derived results ---
  [[nodiscard]] double avg_read_ms() const { return read_ms_.mean(); }
  [[nodiscard]] double avg_write_ms() const { return write_ms_.mean(); }
  [[nodiscard]] std::uint64_t reads() const { return read_ms_.count(); }
  [[nodiscard]] std::uint64_t writes() const { return write_ms_.count(); }
  [[nodiscard]] std::uint64_t disk_reads() const { return disk_reads_; }
  [[nodiscard]] std::uint64_t disk_writes() const { return disk_writes_; }
  [[nodiscard]] std::uint64_t disk_accesses() const {
    return disk_reads_ + disk_writes_;
  }
  [[nodiscard]] std::uint64_t disk_prefetch_reads() const {
    return disk_prefetch_reads_;
  }
  [[nodiscard]] std::uint64_t hits_local() const { return hits_local_; }
  [[nodiscard]] std::uint64_t hits_remote() const { return hits_remote_; }
  [[nodiscard]] std::uint64_t hits_inflight() const { return hits_inflight_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// Fraction of demand blocks found in (or on their way into) the cache.
  [[nodiscard]] double hit_ratio() const {
    const auto total = hits_local_ + hits_remote_ + hits_inflight_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(total - misses_) /
                            static_cast<double>(total);
  }

  /// Table 2: average number of times a written block went to disk.
  [[nodiscard]] double writes_per_block() const {
    if (block_write_counts_.empty()) return 0.0;
    return static_cast<double>(disk_writes_) /
           static_cast<double>(block_write_counts_.size());
  }
  [[nodiscard]] std::size_t distinct_blocks_written() const {
    return block_write_counts_.size();
  }

  [[nodiscard]] std::uint64_t prefetch_arrived() const { return prefetch_arrived_; }
  [[nodiscard]] std::uint64_t prefetch_used() const { return prefetch_used_; }
  [[nodiscard]] std::uint64_t prefetch_wasted() const { return prefetch_wasted_; }

  /// Prefetched blocks never used before leaving the cache (plus those
  /// still unused at end of run, added by FileSystem::finalize).
  [[nodiscard]] double misprediction_ratio() const {
    if (prefetch_arrived_ == 0) return 0.0;
    return static_cast<double>(prefetch_wasted_) /
           static_cast<double>(prefetch_arrived_);
  }

  [[nodiscard]] const Accumulator& read_accumulator() const { return read_ms_; }
  [[nodiscard]] const Histogram& read_histogram() const { return read_hist_; }

 private:
  std::uint64_t warmup_ops_ = 0;
  std::uint64_t issued_ops_ = 0;
  bool measuring_ = false;
  SimTime measure_start_;

  Accumulator read_ms_;
  Accumulator write_ms_;
  Histogram read_hist_;

  std::uint64_t hits_local_ = 0;
  std::uint64_t hits_remote_ = 0;
  std::uint64_t hits_inflight_ = 0;
  std::uint64_t misses_ = 0;

  std::uint64_t disk_reads_ = 0;
  std::uint64_t disk_writes_ = 0;
  std::uint64_t disk_prefetch_reads_ = 0;
  // Only bumped and counted (never iterated): flat table, order-free.
  FlatHashMap<BlockKey, std::uint32_t, BlockKeyHash> block_write_counts_;

  std::uint64_t prefetch_arrived_ = 0;
  std::uint64_t prefetch_used_ = 0;
  std::uint64_t prefetch_wasted_ = 0;
};

}  // namespace lap
