// Machine presets — Table 1 of the paper, verbatim.
#pragma once

#include <cstdint>
#include <string>

#include "disk/disk.hpp"
#include "net/network.hpp"
#include "util/units.hpp"

namespace lap {

struct MachineConfig {
  std::string name;
  std::uint32_t nodes = 0;
  Bytes block_size = 8_KiB;  // "Buffer Size" / "Disk-Block Size"
  NetConfig net;
  std::uint32_t disks = 0;
  DiskConfig disk;

  /// PM — the 128-node parallel machine used for the CHARISMA workload.
  [[nodiscard]] static MachineConfig pm();

  /// NOW — the 50-workstation network used for the Sprite workload.
  [[nodiscard]] static MachineConfig now();

  /// Human-readable dump (benches print it so every reproduction states
  /// its Table 1 parameters).
  [[nodiscard]] std::string describe() const;
};

}  // namespace lap
