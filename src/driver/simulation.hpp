// Assembles one complete simulated system (machine + file system +
// workload), runs it to completion and collects the metrics the paper's
// figures report.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/algorithm_registry.hpp"
#include "driver/machine_config.hpp"
#include "obs/metrics.hpp"
#include "trace/io/source.hpp"
#include "trace/trace.hpp"

namespace lap {

class CounterRegistry;
class SpanCollector;
class TraceSink;

enum class FsKind { kPafs, kXfs };

[[nodiscard]] std::string to_string(FsKind kind);

struct RunConfig {
  MachineConfig machine = MachineConfig::pm();
  FsKind fs = FsKind::kPafs;
  Bytes cache_per_node = 4_MiB;  // the x-axis of Figures 4-7
  AlgorithmSpec algorithm;
  // Periodic write-back period.  The paper's systems use the Sprite-style
  // 30 s sync; our traces are time-compressed (~minutes instead of days),
  // so the presets scale it down to keep the syncs-per-application ratio
  // (see DESIGN.md §4).
  SimTime sync_interval = SimTime::sec(2);
  double warmup_fraction = 0.3;  // per-node fraction of records before
                                 // client-stream metrics measure
  bool net_contention = true;
  // Ablation: disk priority of prefetch reads (default: below demand+sync).
  int prefetch_priority = 2;
  // Distance-dependent disk seeks (off = the paper's flat Table 1 model).
  bool distance_seeks = false;
  // DIMEMAS's short-term CPU scheduling: co-located processes' compute
  // phases serialise on their node's processor.  Off by default (the
  // paper's workloads place roughly one process per node).
  bool cpu_contention = false;

  // Sharded execution (DESIGN.md §14).  shards > 1 partitions the run at
  // node granularity — each simulated node's model state is its own
  // domain, the global directory/manager a domain of its own, the disks
  // service domains — executed in conservative epoch-barrier lockstep on
  // a thread pool.  Under xFS the node domains spread over the model
  // shards (node n -> shard n % model_shards) with roughly a quarter of
  // the shards serving disks; under PAFS the global manager serialises
  // the model, so model domains share shard 0 and disks round-robin over
  // the rest.  Any shard count replays bit-exactly against shards = 1,
  // which lap_check and the golden corpus enforce.  `shard_threads` bounds the worker count (0 =
  // one per shard).  `epoch` can shrink the epoch below the automatic
  // lookahead — min(net minimum hop latency, disk completion latency), see
  // sharded_lookahead() — but never exceed it; zero means automatic.
  // Counter *sampling* is sequential-only (probes read cross-shard state),
  // so a sharded traced run records no counter track; probe export at end
  // of run works for any shard count.
  int shards = 1;
  int shard_threads = 0;
  SimTime epoch;  // zero = automatic lookahead

  // Observability (both optional, not owned).  When `trace` is set, the
  // engine, network, disks, caches and prefetchers stream events into it.
  // When `counters` is also set, its instruments are registered against
  // this run's components and sampled into the trace every
  // `counter_sample_interval` of simulated time.  A sink must not be
  // shared between concurrently running simulations.
  TraceSink* trace = nullptr;
  CounterRegistry* counters = nullptr;
  SimTime counter_sample_interval = SimTime::ms(50);
  // Prefetch-lifecycle provenance (optional, not owned).  When set, every
  // prefetched and demand-read block records a causal span (predictor,
  // trigger, per-stage latencies, settlement).  The collector is strictly
  // passive — attaching it never perturbs simulated state — and its totals
  // are published into `counters` / rendered into `trace` at end of run.
  SpanCollector* spans = nullptr;
};

struct RunResult {
  std::string algorithm;
  std::string fs;
  Bytes cache_per_node = 0;

  // Figure 4-7 metric.
  double avg_read_ms = 0.0;
  double avg_write_ms = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  // Figure 8-11 metric.
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t disk_accesses = 0;
  std::uint64_t disk_prefetch_reads = 0;

  // Table 2 metric.
  double writes_per_block = 0.0;

  // Supporting statistics.
  double hit_ratio = 0.0;
  std::uint64_t hits_local = 0;
  std::uint64_t hits_remote = 0;
  std::uint64_t hits_inflight = 0;
  std::uint64_t misses = 0;
  double misprediction_ratio = 0.0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_fallback = 0;
  // Whole-run prefetch accounting; every arrived block is eventually
  // settled used or wasted, so arrived == used + wasted at end of run.
  std::uint64_t prefetch_arrived = 0;
  std::uint64_t prefetch_used = 0;
  std::uint64_t prefetch_wasted = 0;
  double fallback_fraction = 0.0;
  double read_p95_ms = 0.0;

  SimTime sim_duration;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
};

/// The conservative epoch lookahead for `machine`: the least simulated
/// time any cross-shard interaction can take, i.e. min(network minimum hop
/// latency, disk completion latency).  Events inside one epoch of this
/// width cannot affect another shard within the same epoch, which is what
/// makes barrier-synchronised shards exact (DESIGN.md §14).
[[nodiscard]] SimTime sharded_lookahead(const MachineConfig& machine);

/// Run one simulation to completion.  The trace is shared read-only, so
/// concurrent runs over the same trace are safe.
[[nodiscard]] RunResult run_simulation(const Trace& trace,
                                       const RunConfig& cfg);

/// Same, but pulling records through the streaming interface, so an
/// on-disk `.lapt` workload replays in bounded memory (the in-memory
/// overload above is this one over an InMemoryTraceSource, and the two are
/// bit-exact for equal traces).  Unlike a Trace, a source carries replay
/// state and must be private to this run.
[[nodiscard]] RunResult run_simulation(TraceSource& source,
                                       const RunConfig& cfg);

}  // namespace lap
