// In-memory workload trace plus a line-oriented text format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/record.hpp"
#include "util/units.hpp"

namespace lap {

struct FileInfo {
  FileId id{};
  Bytes size = 0;

  friend bool operator==(const FileInfo&, const FileInfo&) = default;
};

struct ProcessTrace {
  ProcId pid{};
  NodeId node{};
  std::vector<TraceRecord> records;

  friend bool operator==(const ProcessTrace&, const ProcessTrace&) = default;
};

struct Trace {
  Bytes block_size = 8_KiB;
  // Replay mode: when true, each node's processes run back to back (Sprite:
  // a stream of short-lived sessions); when false, every process starts at
  // time zero and its first record's think time staggers it (CHARISMA:
  // concurrent parallel jobs).
  bool serialize_per_node = false;
  std::vector<FileInfo> files;
  std::vector<ProcessTrace> processes;

  /// READ + WRITE records across all processes (the denominator for the
  /// warm-up boundary).
  [[nodiscard]] std::uint64_t total_io_ops() const;
  [[nodiscard]] std::uint64_t total_records() const;
  [[nodiscard]] Bytes total_bytes_read() const;
  [[nodiscard]] Bytes total_bytes_written() const;
  /// Largest node id used plus one.
  [[nodiscard]] std::uint32_t node_span() const;

  void save(std::ostream& os) const;
  [[nodiscard]] static Trace load(std::istream& is);

  friend bool operator==(const Trace&, const Trace&) = default;
};

}  // namespace lap
