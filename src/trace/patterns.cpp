#include "trace/patterns.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace lap {

std::vector<BlockRequest> sequential_pattern(std::uint32_t file_blocks,
                                             std::uint32_t req_blocks) {
  LAP_EXPECTS(req_blocks >= 1);
  std::vector<BlockRequest> out;
  out.reserve(file_blocks / req_blocks + 1);
  for (std::uint32_t b = 0; b < file_blocks; b += req_blocks) {
    out.push_back(BlockRequest{b, std::min(req_blocks, file_blocks - b)});
  }
  return out;
}

std::vector<BlockRequest> strided_pattern(std::uint32_t start,
                                          std::uint32_t chunk,
                                          std::uint32_t stride,
                                          std::uint32_t count) {
  LAP_EXPECTS(chunk >= 1);
  std::vector<BlockRequest> out;
  out.reserve(count);
  std::uint32_t pos = start;
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(BlockRequest{pos, chunk});
    pos += stride;
  }
  return out;
}

std::vector<BlockRequest> interleaved_pattern(std::uint32_t rank,
                                              std::uint32_t nprocs,
                                              std::uint32_t chunk,
                                              std::uint32_t file_blocks) {
  LAP_EXPECTS(nprocs >= 1 && rank < nprocs && chunk >= 1);
  std::vector<BlockRequest> out;
  for (std::uint32_t c = rank; c * chunk < file_blocks; c += nprocs) {
    const std::uint32_t first = c * chunk;
    out.push_back(
        BlockRequest{first, std::min(chunk, file_blocks - first)});
  }
  return out;
}

std::vector<BlockRequest> first_part_passes(std::uint32_t file_blocks,
                                            double portion,
                                            std::uint32_t passes,
                                            std::uint32_t chunk) {
  LAP_EXPECTS(portion > 0.0 && portion <= 1.0);
  LAP_EXPECTS(passes >= 1 && chunk >= 1);
  const auto part_blocks =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     static_cast<double>(file_blocks) * portion));
  std::vector<BlockRequest> out;
  for (std::uint32_t p = 0; p < passes; ++p) {
    for (std::uint32_t c = p; c * chunk < part_blocks; c += passes) {
      const std::uint32_t first = c * chunk;
      out.push_back(
          BlockRequest{first, std::min(chunk, part_blocks - first)});
    }
  }
  return out;
}

}  // namespace lap
