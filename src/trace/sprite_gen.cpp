#include "trace/sprite_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lap {
namespace {

struct Builder {
  const SpriteParams& p;
  Rng rng;
  Trace trace;
  std::uint32_t next_file = 0;
  std::uint32_t next_pid = 0;
  // Popularity-ordered pools: index 0 is the most popular file.
  struct PoolFile {
    std::uint32_t id;
    std::uint32_t blocks;
    std::uint32_t read_blocks;  // the prefix sessions actually read
    std::uint32_t stride = 1;   // request spacing in request-sized units
  };
  std::vector<std::vector<PoolFile>> private_pool;
  std::vector<PoolFile> shared_pool;
  std::vector<std::vector<std::vector<PoolFile>>> scripts;  // [node][script]

  explicit Builder(const SpriteParams& params) : p(params), rng(params.seed) {
    trace.block_size = p.block_size;
    trace.serialize_per_node = true;
  }

  std::uint32_t draw_file_blocks() {
    const double v = rng.lognormal(p.file_blocks_mu, p.file_blocks_sigma);
    const auto blocks = static_cast<std::uint32_t>(std::ceil(v));
    return std::clamp<std::uint32_t>(blocks, 1, p.file_blocks_max);
  }

  std::uint32_t new_file(std::uint32_t blocks) {
    trace.files.push_back(
        FileInfo{FileId{next_file}, static_cast<Bytes>(blocks) * p.block_size});
    return next_file++;
  }

  SimTime exp_think(double mean_ms) {
    return SimTime::us(rng.exponential(mean_ms * 1000.0));
  }

  PoolFile make_pool_file() {
    const std::uint32_t blocks = draw_file_blocks();
    // Whether a file is read whole or only as a prefix is a property of the
    // file (applications re-read the same header/prefix): re-reads repeat
    // the same stopping point, which an IS_PPM graph can learn and a
    // sequential prefetcher cannot.
    std::uint32_t read_blocks = blocks;
    if (rng.chance(p.partial_read_frac) && blocks > 2) {
      read_blocks = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 static_cast<double>(blocks) *
                 rng.uniform(p.partial_lo, p.partial_hi)));
    }
    std::uint32_t stride = 1;
    if (blocks >= 6 && rng.chance(p.strided_file_frac)) {
      stride = static_cast<std::uint32_t>(
          rng.uniform_int(p.stride_min, p.stride_max));
    }
    return PoolFile{new_file(blocks), blocks, read_blocks, stride};
  }

  void populate_pools() {
    private_pool.resize(p.nodes);
    for (std::uint32_t n = 0; n < p.nodes; ++n) {
      private_pool[n].reserve(p.private_files_per_node);
      for (std::uint32_t i = 0; i < p.private_files_per_node; ++i) {
        private_pool[n].push_back(make_pool_file());
      }
    }
    shared_pool.reserve(p.shared_files);
    for (std::uint32_t i = 0; i < p.shared_files; ++i) {
      shared_pool.push_back(make_pool_file());
    }
    scripts.resize(p.nodes);
    for (std::uint32_t n = 0; n < p.nodes; ++n) {
      scripts[n].resize(p.scripts_per_node);
      for (auto& chain : scripts[n]) {
        const auto len = static_cast<std::uint32_t>(
            rng.uniform_int(p.script_len_min, p.script_len_max));
        for (std::uint32_t i = 0; i < len; ++i) {
          chain.push_back(make_pool_file());
        }
      }
    }
  }

  void build_read_session(ProcessTrace& proc, const PoolFile& f,
                          SimTime start_gap) {
    const std::uint32_t file = f.id;
    const std::uint32_t read_blocks = f.read_blocks;
    proc.records.push_back(
        TraceRecord{TraceOp::kOpen, FileId{file}, 0, 0, start_gap});
    std::uint32_t b = 0;
    bool first = true;
    while (b < read_blocks) {
      const auto req = static_cast<std::uint32_t>(
          rng.uniform_int(p.req_blocks_min, p.req_blocks_max));
      const std::uint32_t n = std::min(req, read_blocks - b);
      proc.records.push_back(TraceRecord{
          TraceOp::kRead, FileId{file},
          static_cast<Bytes>(b) * p.block_size,
          static_cast<Bytes>(n) * p.block_size,
          first ? SimTime::zero() : exp_think(p.request_think_ms)});
      b += n * f.stride;  // stride 1 = sequential
      first = false;
    }
    proc.records.push_back(
        TraceRecord{TraceOp::kClose, FileId{file}, 0, 0, SimTime::zero()});
  }

  void build_write_session(ProcessTrace& proc, SimTime start_gap) {
    const std::uint32_t blocks = draw_file_blocks();
    const std::uint32_t file = new_file(blocks);
    proc.records.push_back(
        TraceRecord{TraceOp::kOpen, FileId{file}, 0, 0, start_gap});
    std::uint32_t b = 0;
    while (b < blocks) {
      const auto req = static_cast<std::uint32_t>(
          rng.uniform_int(p.req_blocks_min, p.req_blocks_max));
      const std::uint32_t n = std::min(req, blocks - b);
      proc.records.push_back(TraceRecord{
          TraceOp::kWrite, FileId{file},
          static_cast<Bytes>(b) * p.block_size,
          static_cast<Bytes>(n) * p.block_size,
          exp_think(p.request_think_ms)});
      b += n;
    }
    if (rng.chance(p.reread_after_write_frac)) {
      b = 0;
      while (b < blocks) {
        const auto req = static_cast<std::uint32_t>(
            rng.uniform_int(p.req_blocks_min, p.req_blocks_max));
        const std::uint32_t n = std::min(req, blocks - b);
        proc.records.push_back(TraceRecord{
            TraceOp::kRead, FileId{file},
            static_cast<Bytes>(b) * p.block_size,
            static_cast<Bytes>(n) * p.block_size,
            exp_think(p.request_think_ms)});
        b += n;
      }
    }
    proc.records.push_back(
        TraceRecord{TraceOp::kClose, FileId{file}, 0, 0, SimTime::zero()});
    if (rng.chance(p.temp_delete_frac)) {
      proc.records.push_back(
          TraceRecord{TraceOp::kDelete, FileId{file}, 0, 0, SimTime::zero()});
    }
  }

  void build() {
    populate_pools();
    const auto sessions = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(
               static_cast<double>(p.sessions_per_node) * p.scale)));
    for (std::uint32_t node = 0; node < p.nodes; ++node) {
      for (std::uint32_t s = 0; s < sessions; ++s) {
        // Each session is its own short-lived process; its first record's
        // think time is the gap since the node's previous session ended
        // (sessions on one node are serialised by chaining thinks — see
        // Simulation, which replays per-node processes back to back).
        ProcessTrace proc{ProcId{next_pid++}, NodeId{node}, {}};
        const SimTime gap = exp_think(p.session_gap_ms);
        if (p.scripts_per_node > 0 && rng.chance(p.script_session_frac)) {
          // Run one of this node's scripts: the same files, in the same
          // order, every time.
          const auto& chain = scripts[node][static_cast<std::size_t>(
              rng.uniform_int(0, p.scripts_per_node - 1))];
          bool first = true;
          for (const PoolFile& f : chain) {
            build_read_session(proc, f, first ? gap : SimTime::zero());
            first = false;
          }
        } else if (rng.chance(p.write_session_frac)) {
          build_write_session(proc, gap);
        } else if (rng.chance(p.shared_frac) && !shared_pool.empty()) {
          build_read_session(
              proc, shared_pool[rng.zipf(shared_pool.size(), p.zipf_s)], gap);
        } else {
          const auto& pool = private_pool[node];
          build_read_session(proc, pool[rng.zipf(pool.size(), p.zipf_s)], gap);
        }
        trace.processes.push_back(std::move(proc));
      }
    }
  }
};

}  // namespace

Trace generate_sprite(const SpriteParams& params) {
  LAP_EXPECTS(params.nodes >= 1);
  LAP_EXPECTS(params.block_size > 0);
  LAP_EXPECTS(params.req_blocks_min >= 1 &&
              params.req_blocks_min <= params.req_blocks_max);
  Builder b(params);
  b.build();
  return std::move(b.trace);
}

}  // namespace lap
