#include "trace/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace lap {

std::uint64_t Trace::total_io_ops() const {
  std::uint64_t n = 0;
  for (const auto& p : processes) {
    for (const auto& r : p.records) {
      if (r.op == TraceOp::kRead || r.op == TraceOp::kWrite) ++n;
    }
  }
  return n;
}

std::uint64_t Trace::total_records() const {
  std::uint64_t n = 0;
  for (const auto& p : processes) n += p.records.size();
  return n;
}

Bytes Trace::total_bytes_read() const {
  Bytes n = 0;
  for (const auto& p : processes) {
    for (const auto& r : p.records) {
      if (r.op == TraceOp::kRead) n += r.length;
    }
  }
  return n;
}

Bytes Trace::total_bytes_written() const {
  Bytes n = 0;
  for (const auto& p : processes) {
    for (const auto& r : p.records) {
      if (r.op == TraceOp::kWrite) n += r.length;
    }
  }
  return n;
}

std::uint32_t Trace::node_span() const {
  std::uint32_t max_node = 0;
  for (const auto& p : processes) max_node = std::max(max_node, raw(p.node));
  return processes.empty() ? 0 : max_node + 1;
}

void Trace::save(std::ostream& os) const {
  os << "# lap-trace v1\n";
  os << "blocksize " << block_size << '\n';
  os << "serialize " << (serialize_per_node ? 1 : 0) << '\n';
  for (const auto& f : files) os << "file " << raw(f.id) << ' ' << f.size << '\n';
  for (const auto& p : processes) {
    os << "proc " << raw(p.pid) << ' ' << raw(p.node) << '\n';
    for (const auto& r : p.records) {
      os << "  " << r.think.nanos() << ' ' << to_char(r.op) << ' '
         << raw(r.file) << ' ' << r.offset << ' ' << r.length << '\n';
    }
  }
}

Trace Trace::load(std::istream& is) {
  Trace trace;
  trace.files.clear();
  std::string line;
  ProcessTrace* current = nullptr;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "blocksize") {
      ls >> trace.block_size;
    } else if (tok == "serialize") {
      int v = 0;
      ls >> v;
      trace.serialize_per_node = v != 0;
    } else if (tok == "file") {
      std::uint32_t id = 0;
      Bytes size = 0;
      ls >> id >> size;
      trace.files.push_back(FileInfo{FileId{id}, size});
    } else if (tok == "proc") {
      std::uint32_t pid = 0;
      std::uint32_t node = 0;
      ls >> pid >> node;
      trace.processes.push_back(ProcessTrace{ProcId{pid}, NodeId{node}, {}});
      current = &trace.processes.back();
    } else {
      if (current == nullptr) throw std::invalid_argument("record before proc");
      TraceRecord r;
      std::int64_t think_ns = std::stoll(tok);
      char op = 0;
      std::uint32_t file = 0;
      ls >> op >> file >> r.offset >> r.length;
      if (!ls) throw std::invalid_argument("malformed trace record: " + line);
      r.think = SimTime::ns(think_ns);
      r.op = trace_op_from_char(op);
      r.file = FileId{file};
      current->records.push_back(r);
    }
  }
  return trace;
}

}  // namespace lap
