#include "trace/trace.hpp"

#include <charconv>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lap {

std::uint64_t Trace::total_io_ops() const {
  std::uint64_t n = 0;
  for (const auto& p : processes) {
    for (const auto& r : p.records) {
      if (r.op == TraceOp::kRead || r.op == TraceOp::kWrite) ++n;
    }
  }
  return n;
}

std::uint64_t Trace::total_records() const {
  std::uint64_t n = 0;
  for (const auto& p : processes) n += p.records.size();
  return n;
}

Bytes Trace::total_bytes_read() const {
  Bytes n = 0;
  for (const auto& p : processes) {
    for (const auto& r : p.records) {
      if (r.op == TraceOp::kRead) n += r.length;
    }
  }
  return n;
}

Bytes Trace::total_bytes_written() const {
  Bytes n = 0;
  for (const auto& p : processes) {
    for (const auto& r : p.records) {
      if (r.op == TraceOp::kWrite) n += r.length;
    }
  }
  return n;
}

std::uint32_t Trace::node_span() const {
  std::uint32_t max_node = 0;
  for (const auto& p : processes) max_node = std::max(max_node, raw(p.node));
  return processes.empty() ? 0 : max_node + 1;
}

void Trace::save(std::ostream& os) const {
  os << "# lap-trace v1\n";
  os << "blocksize " << block_size << '\n';
  os << "serialize " << (serialize_per_node ? 1 : 0) << '\n';
  for (const auto& f : files) os << "file " << raw(f.id) << ' ' << f.size << '\n';
  for (const auto& p : processes) {
    os << "proc " << raw(p.pid) << ' ' << raw(p.node) << '\n';
    for (const auto& r : p.records) {
      os << "  " << r.think.nanos() << ' ' << to_char(r.op) << ' '
         << raw(r.file) << ' ' << r.offset << ' ' << r.length << '\n';
    }
  }
}

namespace {

// Strict line tokenizer for the text format.  Every directive has a fixed
// arity and every numeric field must parse completely — trailing tokens,
// partial records and negative values are errors, never silently dropped.

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ls(line);
  std::string tok;
  while (ls >> tok) out.push_back(std::move(tok));
  return out;
}

[[noreturn]] void bad_line(const std::string& why, const std::string& line) {
  throw std::invalid_argument("trace: " + why + ": \"" + line + "\"");
}

std::uint64_t parse_u64(const std::string& tok, const std::string& line) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    bad_line("expected unsigned integer, got \"" + tok + "\"", line);
  }
  return v;
}

std::uint32_t parse_u32(const std::string& tok, const std::string& line) {
  const std::uint64_t v = parse_u64(tok, line);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    bad_line("value out of range: \"" + tok + "\"", line);
  }
  return static_cast<std::uint32_t>(v);
}

void expect_arity(const std::vector<std::string>& toks, std::size_t n,
                  const std::string& line) {
  if (toks.size() < n) bad_line("partial record (missing fields)", line);
  if (toks.size() > n) bad_line("trailing garbage after record", line);
}

bool is_integer(const std::string& tok) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

}  // namespace

Trace Trace::load(std::istream& is) {
  Trace trace;
  trace.files.clear();
  std::string line;
  ProcessTrace* current = nullptr;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;  // whitespace-only line
    const std::string& tok = toks[0];
    if (tok == "blocksize") {
      expect_arity(toks, 2, line);
      trace.block_size = parse_u64(toks[1], line);
      if (trace.block_size == 0) bad_line("block size must be positive", line);
    } else if (tok == "serialize") {
      expect_arity(toks, 2, line);
      trace.serialize_per_node = parse_u64(toks[1], line) != 0;
    } else if (tok == "file") {
      expect_arity(toks, 3, line);
      trace.files.push_back(FileInfo{FileId{parse_u32(toks[1], line)},
                                     parse_u64(toks[2], line)});
    } else if (tok == "proc") {
      expect_arity(toks, 3, line);
      trace.processes.push_back(ProcessTrace{ProcId{parse_u32(toks[1], line)},
                                             NodeId{parse_u32(toks[2], line)},
                                             {}});
      current = &trace.processes.back();
    } else if (is_integer(tok)) {
      if (current == nullptr) throw std::invalid_argument("record before proc");
      expect_arity(toks, 5, line);
      if (toks[1].size() != 1) bad_line("bad op \"" + toks[1] + "\"", line);
      TraceRecord r;
      const std::uint64_t think = parse_u64(tok, line);  // rejects negatives
      if (think > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
        bad_line("think time out of range", line);
      }
      r.think = SimTime::ns(static_cast<std::int64_t>(think));
      r.op = trace_op_from_char(toks[1][0]);
      r.file = FileId{parse_u32(toks[2], line)};
      r.offset = parse_u64(toks[3], line);
      r.length = parse_u64(toks[4], line);
      current->records.push_back(r);
    } else {
      bad_line("unknown directive \"" + tok + "\"", line);
    }
  }
  return trace;
}

}  // namespace lap
