// Synthetic Sprite-like workload (substitution for the Sprite NOW traces;
// see DESIGN.md §4).
//
// The Sprite measurements the paper relies on: many short-lived processes,
// small files read sequentially start-to-finish (or only partially), strong
// popularity skew with temporal re-reads, very little concurrent sharing,
// and most written bytes dying young (temporary files deleted well before
// the 30-second write-back).  Small files mean the predictor's graph is
// cold for a noticeable fraction of each file's accesses — the paper's
// ~25% OBA-fallback figure.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace lap {

struct SpriteParams {
  std::uint32_t nodes = 50;
  Bytes block_size = 8_KiB;

  // Each node runs a sequence of sessions; a session is one short-lived
  // process touching one file.
  std::uint32_t sessions_per_node = 130;
  double scale = 1.0;              // multiplies sessions_per_node
  double session_gap_ms = 560.0;   // exp mean between sessions on a node
  double request_think_ms = 14.0;   // exp mean between a session's requests

  // File population: per-node private working sets plus a globally shared
  // pool; zipf-skewed popularity drives re-reads.
  std::uint32_t private_files_per_node = 130;
  std::uint32_t shared_files = 350;
  double shared_frac = 0.15;  // sessions hitting the shared pool
  double zipf_s = 1.1;

  // File sizes in blocks: lognormal, clipped — most files a few blocks.
  double file_blocks_mu = 2.0;     // exp(mu) ~ 6 blocks median
  double file_blocks_sigma = 1.0;
  std::uint32_t file_blocks_max = 96;

  // Session behaviour.
  std::uint32_t req_blocks_min = 1;
  std::uint32_t req_blocks_max = 2;
  double partial_read_frac = 0.45;   // files only ever read as a prefix
  double partial_lo = 0.2;           // ... of this fraction of its blocks
  double partial_hi = 0.7;
  // Fraction of (large-enough) files accessed with a fixed stride — record
  // skipping, index scans.  The stride is a property of the file, so every
  // visit repeats the same pattern: IS_PPM learns it, sequential read-ahead
  // never does.
  double strided_file_frac = 0.22;
  std::uint32_t stride_min = 2;
  std::uint32_t stride_max = 4;
  double write_session_frac = 0.25;  // sessions that create+write a file
  double temp_delete_frac = 0.7;     // written files deleted at close
  double reread_after_write_frac = 0.5;

  // Script sessions: a fixed chain of files opened in the same order every
  // time (shell scripts, compiler pipelines) — the deterministic open
  // sequences that whole-file prefetching (Kroeger & Long) exploits.
  double script_session_frac = 0.12;
  std::uint32_t scripts_per_node = 2;
  std::uint32_t script_len_min = 3;
  std::uint32_t script_len_max = 5;

  std::uint64_t seed = 1999;
};

[[nodiscard]] Trace generate_sprite(const SpriteParams& params = {});

}  // namespace lap
