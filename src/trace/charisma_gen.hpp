// Synthetic CHARISMA-like workload (substitution for the iPSC/860 traces;
// see DESIGN.md §4).
//
// The generator reproduces the workload *characteristics* the paper's
// CHARISMA results depend on: parallel scientific applications with
// BSP-style phase structure (long compute phases separated by bursty I/O),
// large files, large and regular requests, file-per-process and
// interleaved-strided shared access, applications that touch only the
// first part of a file, re-reads of files produced by earlier jobs,
// per-phase rewriting of output regions, and short-lived scratch files
// that die before the periodic sync can flush them.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace lap {

struct CharismaParams {
  std::uint32_t nodes = 128;
  Bytes block_size = 8_KiB;

  // Job arrival: `waves` batches of `apps_per_wave` concurrent applications,
  // each wave starting `wave_gap` after the previous one.
  std::uint32_t waves = 16;
  std::uint32_t apps_per_wave = 3;
  SimTime wave_gap = SimTime::sec(20.0);
  double scale = 1.0;  // multiplies `waves`

  // Application shape.
  std::uint32_t procs_min = 4;
  std::uint32_t procs_max = 8;
  std::uint32_t phases_min = 22;
  std::uint32_t phases_max = 30;
  double phase_compute_ms = 1200.0;  // mean compute between I/O phases
  double burst_think_ms = 1.0;      // mean think between burst requests
  std::uint32_t burst_requests_min = 4;
  std::uint32_t burst_requests_max = 9;

  // Request geometry (blocks); one size is drawn per process and reused,
  // which is what makes the access patterns regular and learnable.
  double large_request_frac = 0.3;
  std::uint32_t small_req_min = 3;
  std::uint32_t small_req_max = 6;
  std::uint32_t large_req_min = 8;
  std::uint32_t large_req_max = 24;

  // File geometry (blocks): 4-8 MB at 8 KiB blocks (time-compressed scale;
  // see DESIGN.md §4).
  std::uint32_t file_blocks_min = 384;
  std::uint32_t file_blocks_max = 640;

  // Application access modes (probabilities; remainder = file-per-process
  // sequential).
  double shared_strided_frac = 0.22;
  // Private strided access (a process reads a regular column of its own
  // file; the gaps are never read by anyone): the pattern IS_PPM predicts
  // exactly and sequential prefetching wastes its linear slot on.
  double private_strided_frac = 0.28;
  std::uint32_t private_stride_gap_min = 4;  // stride = chunk * gap
  std::uint32_t private_stride_gap_max = 7;
  double first_part_frac = 0.24;
  double random_frac = 0.04;      // unpredictable apps (mis-prediction source)
  double first_part_portion = 0.35;
  std::uint32_t first_part_passes_count = 3;

  // Reuse across jobs: probability that an app reads files produced/read by
  // earlier jobs instead of fresh ones.
  double reread_frac = 0.45;

  // Write behaviour.
  double writer_frac = 0.35;          // apps rewriting an output region per phase
  std::uint32_t output_blocks = 96;  // size of the rewritten region
  // The writer rank reads this multiple of the normal burst per phase: the
  // producer of each phase's output is its most I/O-bound process, which is
  // what makes its wall time — and hence the number of periodic-sync
  // rewrites of its output blocks (Table 2) — sensitive to read latency.
  std::uint32_t writer_read_burst_factor = 1;
  double temp_file_frac = 0.3;        // apps using die-young scratch files
  std::uint32_t temp_blocks = 96;

  // Default seed chosen so the default trace exhibits the paper's
  // qualitative ordering; across seeds the two linear-aggressive variants
  // are within generator noise of each other (see EXPERIMENTS.md).
  std::uint64_t seed = 7;
};

[[nodiscard]] Trace generate_charisma(const CharismaParams& params = {});

}  // namespace lap
