// Access-pattern builders: block-granular request sequences matching the
// pattern classes the CHARISMA and Sprite studies report (sequential,
// regular strided / interleaved, partial-file).  Used by the workload
// generators, the pattern_lab example and the predictor property tests.
#pragma once

#include <cstdint>
#include <vector>

namespace lap {

struct BlockRequest {
  std::uint32_t first = 0;
  std::uint32_t nblocks = 1;

  friend bool operator==(BlockRequest, BlockRequest) = default;
};

/// Whole-file sequential requests of `req_blocks` (last one clipped).
[[nodiscard]] std::vector<BlockRequest> sequential_pattern(
    std::uint32_t file_blocks, std::uint32_t req_blocks);

/// `count` requests of `chunk` blocks, starting at `start`, advancing by
/// `stride` blocks each time.
[[nodiscard]] std::vector<BlockRequest> strided_pattern(std::uint32_t start,
                                                        std::uint32_t chunk,
                                                        std::uint32_t stride,
                                                        std::uint32_t count);

/// The classic parallel interleave: process `rank` of `nprocs` reads chunks
/// rank, rank + nprocs, rank + 2*nprocs, ... of a file partitioned into
/// `chunk`-block pieces.
[[nodiscard]] std::vector<BlockRequest> interleaved_pattern(
    std::uint32_t rank, std::uint32_t nprocs, std::uint32_t chunk,
    std::uint32_t file_blocks);

/// Several strided passes that jointly cover the first `portion` of the
/// file and never touch the rest — the pattern the paper singles out
/// ("many applications only access the first part of a file... using a
/// given access pattern that usually ends up accessing all blocks in this
/// first part, not necessarily in a sequential way").  Pass p reads chunks
/// p, p+passes, p+2*passes, ...
[[nodiscard]] std::vector<BlockRequest> first_part_passes(
    std::uint32_t file_blocks, double portion, std::uint32_t passes,
    std::uint32_t chunk);

}  // namespace lap
