#include "trace/charisma_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <numeric>
#include <tuple>
#include <vector>

#include "trace/patterns.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lap {
namespace {

enum class AppMode {
  kFilePerProcess,
  kSharedStrided,
  kPrivateStrided,
  kFirstPart,
  kRandom
};

struct Builder {
  const CharismaParams& p;
  Rng rng;
  Trace trace;
  std::uint32_t next_file = 0;
  std::uint32_t next_pid = 0;
  std::uint32_t node_cursor = 0;
  // Recently used input files (id, blocks): the re-read pool.
  std::deque<std::pair<std::uint32_t, std::uint32_t>> pool;

  explicit Builder(const CharismaParams& params) : p(params), rng(params.seed) {
    trace.block_size = p.block_size;
  }

  std::uint32_t new_file(std::uint32_t blocks) {
    trace.files.push_back(
        FileInfo{FileId{next_file}, static_cast<Bytes>(blocks) * p.block_size});
    return next_file++;
  }

  void remember_input(std::uint32_t id, std::uint32_t blocks) {
    pool.emplace_back(id, blocks);
    while (pool.size() > 48) pool.pop_front();
  }

  SimTime exp_think(double mean_ms) {
    return SimTime::us(rng.exponential(mean_ms * 1000.0));
  }

  std::uint32_t draw_request_blocks() {
    if (rng.chance(p.large_request_frac)) {
      return static_cast<std::uint32_t>(
          rng.uniform_int(p.large_req_min, p.large_req_max));
    }
    return static_cast<std::uint32_t>(
        rng.uniform_int(p.small_req_min, p.small_req_max));
  }

  void build_app(std::uint32_t wave);
  void build();
};

void Builder::build_app(std::uint32_t wave) {
  // --- application-level draws (shared by all its processes) ---
  AppMode mode = AppMode::kFilePerProcess;
  {
    double r = rng.uniform();
    if (r < p.shared_strided_frac) {
      mode = AppMode::kSharedStrided;
    } else if ((r -= p.shared_strided_frac) < p.private_strided_frac) {
      mode = AppMode::kPrivateStrided;
    } else if ((r -= p.private_strided_frac) < p.first_part_frac) {
      mode = AppMode::kFirstPart;
    } else if ((r -= p.first_part_frac) < p.random_frac) {
      mode = AppMode::kRandom;
    }
  }
  std::uint32_t procs = static_cast<std::uint32_t>(
      rng.uniform_int(p.procs_min, p.procs_max));
  if (mode == AppMode::kSharedStrided) procs = std::max<std::uint32_t>(procs, 2);
  procs = std::min(procs, p.nodes);

  const auto phases =
      static_cast<std::uint32_t>(rng.uniform_int(p.phases_min, p.phases_max));
  std::vector<std::uint32_t> burst(phases);
  for (std::uint32_t ph = 0; ph < phases; ++ph) {
    burst[ph] = static_cast<std::uint32_t>(
        rng.uniform_int(p.burst_requests_min, p.burst_requests_max));
  }
  const std::uint32_t total_requests =
      std::accumulate(burst.begin(), burst.end(), 0U);

  const bool reread = !pool.empty() && rng.chance(p.reread_frac);
  const bool writer = rng.chance(p.writer_frac);
  const bool uses_temp = rng.chance(p.temp_file_frac);
  const auto file_blocks = static_cast<std::uint32_t>(
      rng.uniform_int(p.file_blocks_min, p.file_blocks_max));
  const auto shared_chunk = static_cast<std::uint32_t>(rng.uniform_int(2, 8));

  auto pick_input = [&]() -> std::pair<std::uint32_t, std::uint32_t> {
    // Random-access apps work on private scratch data: they neither re-read
    // the shared pool nor publish their files into it (their access graphs
    // would poison later sequential readers' predictions).
    if (mode == AppMode::kRandom) {
      return {new_file(file_blocks), file_blocks};
    }
    if (reread) {
      return pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    }
    const std::uint32_t id = new_file(file_blocks);
    remember_input(id, file_blocks);
    return {id, file_blocks};
  };

  const std::pair<std::uint32_t, std::uint32_t> shared_file =
      mode == AppMode::kSharedStrided
          ? pick_input()
          : std::pair<std::uint32_t, std::uint32_t>{0, 0};

  const SimTime app_start =
      p.wave_gap * wave + SimTime::us(rng.uniform(0.0, 2e6));

  for (std::uint32_t rank = 0; rank < procs; ++rank) {
    ProcessTrace proc{ProcId{next_pid++}, NodeId{node_cursor++ % p.nodes}, {}};

    const bool is_writer = writer && rank == 0;
    const std::uint32_t req = draw_request_blocks();

    // The writer rank streams once through a large, fresh input (a mesh
    // scan feeding each phase's checkpoint): its wall time is read-bound,
    // which is what couples the periodic-sync write counts (Table 2) to
    // the prefetching algorithm.
    std::uint32_t input_id = 0;
    std::uint32_t input_blocks = 0;
    if (is_writer) {
      // The scan skips every other chunk (ghost/halo regions): a regular
      // stride the interval predictor models exactly and sequential
      // read-ahead wastes half its linear budget on.
      const std::uint32_t scan_blocks =
          2 * total_requests * p.writer_read_burst_factor * req + req;
      input_id = new_file(scan_blocks);
      input_blocks = scan_blocks;
    } else {
      std::tie(input_id, input_blocks) =
          mode == AppMode::kSharedStrided ? shared_file : pick_input();
    }

    std::vector<BlockRequest> pattern;
    if (is_writer) {
      pattern = strided_pattern(0, req, 2 * req,
                                total_requests * p.writer_read_burst_factor);
    } else {
    switch (mode) {
      case AppMode::kFilePerProcess:
        pattern = sequential_pattern(input_blocks, req);
        break;
      case AppMode::kSharedStrided:
        pattern = interleaved_pattern(rank, procs, shared_chunk, input_blocks);
        break;
      case AppMode::kPrivateStrided: {
        const auto gap = static_cast<std::uint32_t>(rng.uniform_int(
            p.private_stride_gap_min, p.private_stride_gap_max));
        const std::uint32_t stride = req * gap;
        pattern = strided_pattern(0, req, stride, input_blocks / stride);
        break;
      }
      case AppMode::kFirstPart:
        pattern = first_part_passes(input_blocks, p.first_part_portion,
                                    p.first_part_passes_count, req);
        break;
      case AppMode::kRandom: {
        pattern.reserve(total_requests);
        for (std::uint32_t i = 0; i < total_requests; ++i) {
          const std::uint32_t span = std::max<std::uint32_t>(1, input_blocks - req);
          pattern.push_back(BlockRequest{
              static_cast<std::uint32_t>(rng.uniform_int(0, span - 1)), req});
        }
        break;
      }
    }
    }
    LAP_ASSERT(!pattern.empty());

    auto emit = [&](TraceOp op, std::uint32_t file, std::uint64_t first_block,
                    std::uint32_t nblocks, SimTime think) {
      proc.records.push_back(TraceRecord{
          op, FileId{file}, first_block * p.block_size,
          static_cast<Bytes>(nblocks) * p.block_size, think});
    };

    emit(TraceOp::kOpen, input_id, 0, 0, app_start);

    // Rank 0 of a writer app maintains an output region, rewritten each
    // phase (checkpoint-style) — the behaviour behind Table 2.
    std::uint32_t output_id = 0;
    if (is_writer) {
      output_id = new_file(p.output_blocks);
      emit(TraceOp::kOpen, output_id, 0, 0, SimTime::zero());
    }

    std::size_t cursor = 0;
    const std::uint32_t burst_factor =
        is_writer ? p.writer_read_burst_factor : 1;
    for (std::uint32_t ph = 0; ph < phases; ++ph) {
      for (std::uint32_t i = 0; i < burst[ph] * burst_factor; ++i) {
        const BlockRequest br = pattern[cursor++ % pattern.size()];
        // Compute phases are drawn per process: real jobs synchronise only
        // loosely, and fully synchronous bursts would overstate disk
        // queueing for every algorithm alike.
        const SimTime think =
            i == 0 ? exp_think(p.phase_compute_ms) : exp_think(p.burst_think_ms);
        emit(TraceOp::kRead, input_id, br.first, br.nblocks, think);
      }
      if (is_writer) {
        for (std::uint32_t b = 0; b < p.output_blocks; b += req) {
          emit(TraceOp::kWrite, output_id, b,
               std::min(req, p.output_blocks - b), exp_think(p.burst_think_ms));
        }
      }
      if (uses_temp && rank == procs - 1 && ph == phases / 2) {
        // Scratch data: written, read back, deleted — typically before the
        // periodic sync can flush it.
        const std::uint32_t temp_id = new_file(p.temp_blocks);
        emit(TraceOp::kOpen, temp_id, 0, 0, SimTime::zero());
        for (std::uint32_t b = 0; b < p.temp_blocks; b += req) {
          emit(TraceOp::kWrite, temp_id, b, std::min(req, p.temp_blocks - b),
               exp_think(p.burst_think_ms));
        }
        for (std::uint32_t b = 0; b < p.temp_blocks; b += req) {
          emit(TraceOp::kRead, temp_id, b, std::min(req, p.temp_blocks - b),
               exp_think(p.burst_think_ms));
        }
        emit(TraceOp::kClose, temp_id, 0, 0, SimTime::zero());
        emit(TraceOp::kDelete, temp_id, 0, 0, SimTime::zero());
      }
    }

    if (is_writer) emit(TraceOp::kClose, output_id, 0, 0, SimTime::zero());
    emit(TraceOp::kClose, input_id, 0, 0, SimTime::zero());
    trace.processes.push_back(std::move(proc));
  }
}

void Builder::build() {
  const auto waves = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::lround(static_cast<double>(p.waves) * p.scale)));
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    for (std::uint32_t a = 0; a < p.apps_per_wave; ++a) build_app(wave);
  }
}

}  // namespace

Trace generate_charisma(const CharismaParams& params) {
  LAP_EXPECTS(params.nodes >= 1);
  LAP_EXPECTS(params.block_size > 0);
  LAP_EXPECTS(params.procs_min >= 1 && params.procs_min <= params.procs_max);
  LAP_EXPECTS(params.file_blocks_min >= 1 &&
              params.file_blocks_min <= params.file_blocks_max);
  Builder b(params);
  b.build();
  return std::move(b.trace);
}

}  // namespace lap
