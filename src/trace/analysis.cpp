#include "trace/analysis.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <set>
#include <unordered_map>
#include <vector>

namespace lap {
namespace {

/// Incremental classifier for one (process, file) request stream.
/// Classification is by the *dominant* transition kind (>= 90%), so a
/// sequential scan that wraps once, or a strided pass with a reset jump,
/// keeps its class — the same tolerance the trace studies apply.
class StreamClassifier {
 public:
  void add(std::int64_t first_block, std::int64_t nblocks) {
    ++requests_;
    if (requests_ > 1) {
      const std::int64_t interval = first_block - last_first_;
      ++transitions_;
      if (interval == last_size_) {
        ++contiguous_;
      } else {
        ++interval_counts_[interval];
      }
    }
    last_first_ = first_block;
    last_size_ = nblocks;
  }

  [[nodiscard]] StreamPattern pattern() const {
    if (requests_ <= 1) return StreamPattern::kSingle;
    const double n = static_cast<double>(transitions_);
    if (static_cast<double>(contiguous_) >= 0.9 * n) {
      return StreamPattern::kSequential;
    }
    std::uint64_t dominant = 0;
    for (const auto& [interval, count] : interval_counts_) {
      dominant = std::max(dominant, count);
    }
    if (static_cast<double>(dominant) >= 0.9 * n) {
      return StreamPattern::kStrided;
    }
    return StreamPattern::kIrregular;
  }

 private:
  std::uint64_t requests_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t contiguous_ = 0;
  std::int64_t last_first_ = 0;
  std::int64_t last_size_ = 0;
  std::map<std::int64_t, std::uint64_t> interval_counts_;
};

}  // namespace

const char* to_string(StreamPattern p) {
  switch (p) {
    case StreamPattern::kSequential: return "sequential";
    case StreamPattern::kStrided: return "strided";
    case StreamPattern::kIrregular: return "irregular";
    case StreamPattern::kSingle: return "single-request";
  }
  return "?";
}

TraceProfile profile_trace(const Trace& trace) {
  TraceProfile p;
  const Bytes bs = trace.block_size;

  // Iterated only to fold into commutative sums/counts, so the unordered
  // iteration order cannot leak into the profile (suppressed at each
  // fold site below).
  std::unordered_map<std::uint64_t, StreamClassifier> streams;
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>> readers;
  std::uint64_t total_read_blocks = 0;
  std::uint64_t large_reads = 0;

  for (const ProcessTrace& proc : trace.processes) {
    for (const TraceRecord& r : proc.records) {
      switch (r.op) {
        case TraceOp::kRead: {
          ++p.read_ops;
          p.bytes_read += r.length;
          const std::int64_t first = static_cast<std::int64_t>(r.offset / bs);
          const std::int64_t last =
              static_cast<std::int64_t>((r.offset + r.length - 1) / bs);
          const std::int64_t blocks = last - first + 1;
          total_read_blocks += static_cast<std::uint64_t>(blocks);
          p.max_read_blocks =
              std::max(p.max_read_blocks, static_cast<std::uint64_t>(blocks));
          if (blocks >= 8) ++large_reads;
          const std::uint64_t key =
              (static_cast<std::uint64_t>(raw(proc.pid)) << 32) | raw(r.file);
          streams[key].add(first, blocks);
          readers[raw(r.file)].insert(raw(proc.pid));
          break;
        }
        case TraceOp::kWrite:
          ++p.write_ops;
          p.bytes_written += r.length;
          break;
        case TraceOp::kDelete:
          ++p.files_deleted;
          break;
        case TraceOp::kOpen:
        case TraceOp::kClose:
          break;
      }
    }
  }

  if (p.read_ops > 0) {
    p.mean_read_blocks =
        static_cast<double>(total_read_blocks) / static_cast<double>(p.read_ops);
    p.large_read_share =
        static_cast<double>(large_reads) / static_cast<double>(p.read_ops);
  }

  std::uint64_t classified = 0;
  // lap-lint: allow-next-line(unordered-iteration)
  for (const auto& [key, cls] : streams) {
    ++p.stream_counts[cls.pattern()];
  }
  for (const auto& [pattern, count] : p.stream_counts) {
    if (pattern != StreamPattern::kSingle) classified += count;
  }
  if (classified > 0) {
    p.sequential_share =
        static_cast<double>(p.stream_counts[StreamPattern::kSequential]) /
        static_cast<double>(classified);
    p.strided_share =
        static_cast<double>(p.stream_counts[StreamPattern::kStrided]) /
        static_cast<double>(classified);
  }

  if (!readers.empty()) {
    std::uint64_t total_readers = 0;
    std::uint64_t shared = 0;
    // lap-lint: allow-next-line(unordered-iteration)
    for (const auto& [file, pids] : readers) {
      total_readers += pids.size();
      shared += pids.size() >= 2;
    }
    p.mean_readers_per_file =
        static_cast<double>(total_readers) / static_cast<double>(readers.size());
    p.shared_file_share =
        static_cast<double>(shared) / static_cast<double>(readers.size());
  }

  if (!trace.files.empty()) {
    Bytes total = 0;
    for (const FileInfo& f : trace.files) total += f.size;
    p.mean_file_blocks = static_cast<double>(total / bs) /
                         static_cast<double>(trace.files.size());
    p.deleted_share = static_cast<double>(p.files_deleted) /
                      static_cast<double>(trace.files.size());
  }
  return p;
}

void TraceProfile::print(std::ostream& os) const {
  os << "reads:           " << read_ops << " ops, " << bytes_read / (1024 * 1024)
     << " MB (mean " << mean_read_blocks << " blocks, max " << max_read_blocks
     << ", " << large_read_share * 100 << "% >= 8 blocks)\n";
  os << "writes:          " << write_ops << " ops, "
     << bytes_written / (1024 * 1024) << " MB\n";
  os << "streams:         ";
  for (const auto& [pattern, count] : stream_counts) {
    os << count << " " << to_string(pattern) << "  ";
  }
  os << "\n";
  os << "pattern shares:  " << sequential_share * 100 << "% sequential, "
     << strided_share * 100 << "% strided (of multi-request streams)\n";
  os << "sharing:         " << mean_readers_per_file
     << " readers/file on average, " << shared_file_share * 100
     << "% of files shared\n";
  os << "files:           mean " << mean_file_blocks << " blocks, "
     << files_deleted << " deleted (" << deleted_share * 100 << "%)\n";
}

}  // namespace lap
