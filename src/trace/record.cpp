#include "trace/record.hpp"

#include <stdexcept>
#include <string>

namespace lap {

char to_char(TraceOp op) {
  switch (op) {
    case TraceOp::kOpen: return 'O';
    case TraceOp::kRead: return 'R';
    case TraceOp::kWrite: return 'W';
    case TraceOp::kClose: return 'C';
    case TraceOp::kDelete: return 'D';
  }
  return '?';
}

TraceOp trace_op_from_char(char c) {
  switch (c) {
    case 'O': return TraceOp::kOpen;
    case 'R': return TraceOp::kRead;
    case 'W': return TraceOp::kWrite;
    case 'C': return TraceOp::kClose;
    case 'D': return TraceOp::kDelete;
    default: throw std::invalid_argument(std::string("bad trace op: ") + c);
  }
}

}  // namespace lap
