// Trace records.  A trace is the unit of workload input: per-process
// sequences of file operations, each preceded by a CPU burst ("think
// time"), exactly the information the paper's DIMEMAS traces carry (CPU,
// communication and I/O demand sequences rather than absolute timestamps).
// Replay is closed-loop: the next record starts only when the previous
// operation completes, so faster I/O makes the application finish sooner —
// the effect behind the paper's disk-write results (Table 2).
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace lap {

enum class TraceOp : std::uint8_t { kOpen, kRead, kWrite, kClose, kDelete };

[[nodiscard]] char to_char(TraceOp op);
[[nodiscard]] TraceOp trace_op_from_char(char c);

struct TraceRecord {
  TraceOp op = TraceOp::kRead;
  FileId file{};
  Bytes offset = 0;  // bytes
  Bytes length = 0;  // bytes
  SimTime think;     // CPU burst before this operation

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

}  // namespace lap
