// LAPT wire format: constants, typed errors and varint primitives.
//
// A `.lapt` file is the binary counterpart of the "# lap-trace v1" text
// format — same model (file table + per-process record streams), but
// delta/varint coded so million-record workloads stay small and can be
// replayed in bounded memory.  Layout (all integers little-endian):
//
//   header   magic "LAPT" | u16 version | u16 flags | u64 block_size
//            | u32 file_count | u32 process_count | u64 total_records
//            | u64 total_io_ops                                  (40 bytes)
//   files    file_count  x { u32 id | u64 size }                 (12 bytes)
//   procs    process_count x { u32 pid | u32 node | u64 record_count
//            | u64 stream_offset | u64 stream_bytes }            (32 bytes)
//   streams  process_count record streams, back to back, each exactly
//            stream_bytes long, starting at stream_offset from the start
//            of the file.  Nothing may follow the last stream.
//
// Record coding (per stream, all delta state starts at zero):
//
//   u8 op | svarint(file - prev_file) | svarint(offset - prev_end)
//        | svarint(length - prev_len) | svarint(think - prev_think)
//
// where prev_end is the previous record's offset+length — a sequential
// scan encodes as offset delta 0 — and svarint is a zigzag-coded LEB128
// varint.  Version policy: readers accept exactly the versions they know
// (currently 1) and must reject anything newer; any layout or coding
// change bumps kVersion.  See DESIGN.md §11.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lap {

/// Why the reader rejected an input.  Every malformed input maps to one of
/// these — the reader never crashes and never silently truncates.
enum class TraceIoErrc {
  kTruncated,           // input ends before the layout says it should
  kBadMagic,            // not a LAPT file
  kUnsupportedVersion,  // newer (or unknown) format version
  kHeaderCorrupt,       // header fields are internally inconsistent
  kCountOverflow,       // a count that cannot fit in the bytes that carry it
  kBadFileTable,        // duplicate or invalid file table entry
  kBadProcessTable,     // overlapping / out-of-bounds record streams
  kUnknownFile,         // record references a file id not in the table
  kBadRecord,           // undecodable record (bad op, varint, or range)
  kTrailingGarbage,     // bytes after the last record stream
  kIoFailure,           // the underlying file cannot be opened or written
  kBadOptions,          // caller-supplied ingestion options are invalid
};

[[nodiscard]] std::string to_string(TraceIoErrc code);

class TraceIoError : public std::runtime_error {
 public:
  TraceIoError(TraceIoErrc code, const std::string& detail)
      : std::runtime_error(to_string(code) + ": " + detail), code_(code) {}

  [[nodiscard]] TraceIoErrc code() const { return code_; }

 private:
  TraceIoErrc code_;
};

namespace wire {

inline constexpr char kMagic[4] = {'L', 'A', 'P', 'T'};
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::uint16_t kFlagSerializePerNode = 1u << 0;
inline constexpr std::size_t kHeaderBytes = 40;
inline constexpr std::size_t kFileEntryBytes = 12;
inline constexpr std::size_t kProcEntryBytes = 32;
/// Smallest possible record: op byte + four one-byte varints.
inline constexpr std::uint64_t kMinRecordBytes = 5;
/// Largest possible record: op byte + four ten-byte varints.
inline constexpr std::size_t kMaxRecordBytes = 41;
inline constexpr std::size_t kMaxVarintBytes = 10;

// --- encoding (append to a byte string) ---

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

[[nodiscard]] inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline void put_svarint(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

// --- decoding (from a bounded byte view; cursor advances) ---

[[nodiscard]] inline std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Decode one varint from [*pos, end).  Advances *pos past it.  Throws
/// kTruncated when the buffer ends mid-varint and kBadRecord when the
/// encoding exceeds 10 bytes (cannot be a u64).
[[nodiscard]] std::uint64_t get_varint(const unsigned char** pos,
                                       const unsigned char* end);

[[nodiscard]] std::int64_t get_svarint(const unsigned char** pos,
                                       const unsigned char* end);

}  // namespace wire
}  // namespace lap
