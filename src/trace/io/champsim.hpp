// ChampSim-style trace ingestion.
//
// Prefetcher papers are routinely evaluated on externally captured
// block-access traces (ChampSim memory traces and the "load trace" CSV
// dumps derived from them).  This adapter turns such a stream of
// LOAD/STORE accesses into a lap workload trace, so foreign corpora can be
// replayed through the cooperative cache exactly like the built-in
// CHARISMA/Sprite generators.
//
// Accepted input, one access per line (commas or whitespace separate
// fields; '#'-lines and blank lines are skipped):
//
//   typed:      LOAD <addr> [...]      |   <addr> LOAD [...]
//               (type keywords: LOAD/STORE, L/S, R/W, RFO; any case)
//   load-CSV:   <instr_id> <cycle> <addr> [<pc> [<hit>]]
//               (>= 3 numeric fields, no type keyword: all LOADs, cycle
//               deltas become think time)
//
// Numbers may be decimal or 0x-hex.  The flat memory address space is
// striped into files (`bytes_per_file`), each access becomes one
// block-aligned read/write of `line_bytes`, and accesses are sharded
// across `nodes` single-process clients by file so a multi-node
// cooperative cache sees cross-node sharing of a real address stream.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "trace/trace.hpp"

namespace lap {

struct ChampsimIngestOptions {
  Bytes block_size = 8_KiB;    // cache block size of the produced trace
  Bytes line_bytes = 64;       // bytes touched per access (ChampSim line)
  Bytes bytes_per_file = 1_MiB;  // address-space stripe that becomes a file
  double ns_per_cycle = 1.0;   // cycle deltas -> think time (load-CSV only)
  std::uint32_t nodes = 1;     // shard accesses across this many clients
};

struct ChampsimIngestStats {
  std::uint64_t lines = 0;    // non-blank, non-comment lines seen
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t skipped = 0;  // unparseable lines (reported, not fatal)
};

/// Convert a ChampSim-style access stream to a workload trace.  Throws
/// std::invalid_argument when the input yields no accesses at all or an
/// option is invalid; individual junk lines are counted in
/// `stats->skipped` instead of aborting a multi-million-line ingest.
[[nodiscard]] Trace ingest_champsim(std::istream& is,
                                    const ChampsimIngestOptions& opts = {},
                                    ChampsimIngestStats* stats = nullptr);

}  // namespace lap
