#include "trace/io/source.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace lap {

std::uint32_t TraceMeta::node_span() const {
  std::uint32_t max_node = 0;
  for (const ProcessInfo& p : processes) max_node = std::max(max_node, raw(p.node));
  return processes.empty() ? 0 : max_node + 1;
}

TraceMeta make_meta(const Trace& trace) {
  TraceMeta m;
  m.block_size = trace.block_size;
  m.serialize_per_node = trace.serialize_per_node;
  m.files = trace.files;
  m.processes.reserve(trace.processes.size());
  for (const ProcessTrace& p : trace.processes) {
    m.processes.push_back(TraceMeta::ProcessInfo{
        p.pid, p.node, static_cast<std::uint64_t>(p.records.size())});
    m.total_records += p.records.size();
    for (const TraceRecord& r : p.records) {
      if (r.op == TraceOp::kRead || r.op == TraceOp::kWrite) ++m.total_io_ops;
    }
  }
  return m;
}

namespace {

class VectorCursor final : public RecordCursor {
 public:
  explicit VectorCursor(const std::vector<TraceRecord>& records)
      : records_(&records) {}

  bool next(TraceRecord& out) override {
    if (pos_ >= records_->size()) return false;
    out = (*records_)[pos_++];
    return true;
  }

 private:
  const std::vector<TraceRecord>* records_;
  std::size_t pos_ = 0;
};

}  // namespace

InMemoryTraceSource::InMemoryTraceSource(const Trace& trace)
    : trace_(&trace), meta_(make_meta(trace)) {}

std::unique_ptr<RecordCursor> InMemoryTraceSource::open(std::size_t index) {
  LAP_EXPECTS(index < trace_->processes.size());
  return std::make_unique<VectorCursor>(trace_->processes[index].records);
}

}  // namespace lap
