// Streaming workload input.
//
// A TraceSource is what the driver actually replays: trace-wide metadata
// plus per-process record streams that are pulled one record at a time, so
// a million-record workload never has to be materialised in RAM.  The
// in-memory `Trace` is one implementation; the chunked `.lapt` file reader
// (binary_io.hpp) is another, proven bit-exact against it by RunResult
// hashes (tests/test_trace_io.cpp).
//
// `open(i)` may be called any number of times per process — the informed
// upper bound scans each stream once for hints before replaying it — and
// cursors for different processes are live concurrently (that is how
// concurrent client processes replay).  A source is single-run property:
// it must not be shared between simulations running in parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace.hpp"

namespace lap {

/// Everything about a trace that the driver needs up front (sizing caches,
/// placing processes, computing the warm-up boundary) — without the
/// records themselves.
struct TraceMeta {
  struct ProcessInfo {
    ProcId pid{};
    NodeId node{};
    std::uint64_t records = 0;
  };

  Bytes block_size = 8_KiB;
  bool serialize_per_node = false;
  std::vector<FileInfo> files;
  std::vector<ProcessInfo> processes;
  std::uint64_t total_records = 0;
  std::uint64_t total_io_ops = 0;  // READ + WRITE records

  /// Largest node id used plus one (0 when there are no processes).
  [[nodiscard]] std::uint32_t node_span() const;
};

/// Pull-based iterator over one process's records.
class RecordCursor {
 public:
  virtual ~RecordCursor() = default;

  /// Fill `out` with the next record; false at end of stream.
  virtual bool next(TraceRecord& out) = 0;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  [[nodiscard]] virtual const TraceMeta& meta() const = 0;

  /// Fresh cursor over process `meta().processes[index]`, positioned at its
  /// first record.
  [[nodiscard]] virtual std::unique_ptr<RecordCursor> open(
      std::size_t index) = 0;
};

/// Adapter over an in-memory Trace (not owned; must outlive the source).
class InMemoryTraceSource final : public TraceSource {
 public:
  explicit InMemoryTraceSource(const Trace& trace);

  [[nodiscard]] const TraceMeta& meta() const override { return meta_; }
  [[nodiscard]] std::unique_ptr<RecordCursor> open(std::size_t index) override;

 private:
  const Trace* trace_;
  TraceMeta meta_;
};

/// The metadata an in-memory trace implies.
[[nodiscard]] TraceMeta make_meta(const Trace& trace);

}  // namespace lap
