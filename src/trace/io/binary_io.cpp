#include "trace/io/binary_io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/io/format.hpp"
#include "util/assert.hpp"

namespace lap {

namespace wire {

std::uint64_t get_varint(const unsigned char** pos, const unsigned char* end) {
  const unsigned char* p = *pos;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (p == end) throw TraceIoError(TraceIoErrc::kTruncated, "varint");
    const unsigned char byte = *p++;
    // The tenth byte may only carry the top bit of a u64.
    if (i == kMaxVarintBytes - 1 && (byte & 0xfe) != 0) {
      throw TraceIoError(TraceIoErrc::kBadRecord, "varint exceeds 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      *pos = p;
      return v;
    }
  }
  throw TraceIoError(TraceIoErrc::kBadRecord, "varint exceeds 10 bytes");
}

std::int64_t get_svarint(const unsigned char** pos, const unsigned char* end) {
  return unzigzag(get_varint(pos, end));
}

}  // namespace wire

std::string to_string(TraceIoErrc code) {
  switch (code) {
    case TraceIoErrc::kTruncated: return "truncated input";
    case TraceIoErrc::kBadMagic: return "bad magic (not a LAPT trace)";
    case TraceIoErrc::kUnsupportedVersion: return "unsupported format version";
    case TraceIoErrc::kHeaderCorrupt: return "corrupt header";
    case TraceIoErrc::kCountOverflow: return "record count overflow";
    case TraceIoErrc::kBadFileTable: return "bad file table";
    case TraceIoErrc::kBadProcessTable: return "bad process table";
    case TraceIoErrc::kUnknownFile: return "record references unknown file";
    case TraceIoErrc::kBadRecord: return "undecodable record";
    case TraceIoErrc::kTrailingGarbage: return "trailing garbage";
    case TraceIoErrc::kIoFailure: return "file I/O failure";
    case TraceIoErrc::kBadOptions: return "invalid options";
  }
  return "trace io error";
}

namespace {

using namespace wire;

constexpr std::uint8_t kMaxOp = static_cast<std::uint8_t>(TraceOp::kDelete);
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

/// Per-stream delta-coding state (writer and reader run the same walk).
struct DeltaState {
  std::int64_t prev_file = 0;
  std::int64_t prev_end = 0;  // previous record's offset + length
  std::int64_t prev_len = 0;
  std::int64_t prev_think = 0;
};

void encode_record(std::string& out, const TraceRecord& r, DeltaState& st) {
  // The wire codes byte quantities as signed deltas; anything above 2^62
  // cannot appear in a real workload and would overflow the arithmetic.
  LAP_EXPECTS(r.offset <= static_cast<Bytes>(kI64Max / 2) &&
              r.length <= static_cast<Bytes>(kI64Max / 2));
  LAP_EXPECTS(r.think.nanos() >= 0);
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(r.op)));
  const auto file = static_cast<std::int64_t>(raw(r.file));
  const auto offset = static_cast<std::int64_t>(r.offset);
  const auto length = static_cast<std::int64_t>(r.length);
  put_svarint(out, file - st.prev_file);
  put_svarint(out, offset - st.prev_end);
  put_svarint(out, length - st.prev_len);
  put_svarint(out, r.think.nanos() - st.prev_think);
  st.prev_file = file;
  st.prev_end = offset + length;
  st.prev_len = length;
  st.prev_think = r.think.nanos();
}

TraceRecord decode_record(const unsigned char** pos, const unsigned char* end,
                          DeltaState& st,
                          const std::vector<std::uint32_t>& file_ids) {
  if (*pos == end) throw TraceIoError(TraceIoErrc::kTruncated, "record op");
  const std::uint8_t op = **pos;
  ++*pos;
  if (op > kMaxOp) {
    throw TraceIoError(TraceIoErrc::kBadRecord,
                       "op byte " + std::to_string(op));
  }
  const std::int64_t file = st.prev_file + get_svarint(pos, end);
  const std::int64_t offset = st.prev_end + get_svarint(pos, end);
  const std::int64_t length = st.prev_len + get_svarint(pos, end);
  const std::int64_t think = st.prev_think + get_svarint(pos, end);
  if (file < 0 || file > std::numeric_limits<std::uint32_t>::max()) {
    throw TraceIoError(TraceIoErrc::kBadRecord, "file id out of range");
  }
  if (offset < 0 || length < 0 || offset > kI64Max - length) {
    throw TraceIoError(TraceIoErrc::kBadRecord, "negative offset or length");
  }
  if (think < 0) {
    throw TraceIoError(TraceIoErrc::kBadRecord, "negative think time");
  }
  const auto fid = static_cast<std::uint32_t>(file);
  if (!std::binary_search(file_ids.begin(), file_ids.end(), fid)) {
    throw TraceIoError(TraceIoErrc::kUnknownFile,
                       "file " + std::to_string(fid));
  }
  st.prev_file = file;
  st.prev_end = offset + length;
  st.prev_len = length;
  st.prev_think = think;
  TraceRecord r;
  r.op = static_cast<TraceOp>(op);
  r.file = FileId{fid};
  r.offset = static_cast<Bytes>(offset);
  r.length = static_cast<Bytes>(length);
  r.think = SimTime::ns(think);
  return r;
}

struct Layout {
  TraceMeta meta;
  std::vector<BinaryTraceSource::Extent> extents;  // contiguous, in order
  std::vector<std::uint32_t> file_ids;             // sorted
};

/// Validate the header + tables in `head` (which must hold at least the
/// header and both tables) against a file of `file_size` bytes total.
Layout parse_layout(const unsigned char* head, std::uint64_t head_size,
                    std::uint64_t file_size) {
  if (head_size < kHeaderBytes) {
    throw TraceIoError(TraceIoErrc::kTruncated,
                       "header needs " + std::to_string(kHeaderBytes) +
                           " bytes, have " + std::to_string(head_size));
  }
  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    throw TraceIoError(TraceIoErrc::kBadMagic, "expected \"LAPT\"");
  }
  const std::uint16_t version = get_u16(head + 4);
  if (version != kVersion) {
    throw TraceIoError(TraceIoErrc::kUnsupportedVersion,
                       "version " + std::to_string(version) +
                           " (reader knows " + std::to_string(kVersion) + ")");
  }
  const std::uint16_t flags = get_u16(head + 6);
  if ((flags & ~kFlagSerializePerNode) != 0) {
    throw TraceIoError(TraceIoErrc::kHeaderCorrupt, "unknown flag bits");
  }
  Layout lay;
  lay.meta.block_size = get_u64(head + 8);
  if (lay.meta.block_size == 0) {
    throw TraceIoError(TraceIoErrc::kHeaderCorrupt, "block size zero");
  }
  lay.meta.serialize_per_node = (flags & kFlagSerializePerNode) != 0;
  const std::uint64_t file_count = get_u32(head + 16);
  const std::uint64_t proc_count = get_u32(head + 20);
  const std::uint64_t total_records = get_u64(head + 24);
  lay.meta.total_io_ops = get_u64(head + 32);

  const std::uint64_t tables_end = kHeaderBytes + file_count * kFileEntryBytes +
                                   proc_count * kProcEntryBytes;
  if (tables_end > file_size || tables_end > head_size) {
    throw TraceIoError(TraceIoErrc::kTruncated,
                       "file/process tables extend past end of input");
  }
  // Even an empty record stream costs kMinRecordBytes per record, so a
  // total_records claim the file cannot possibly hold is rejected before
  // any allocation sized from it.
  if (total_records > file_size / kMinRecordBytes) {
    throw TraceIoError(TraceIoErrc::kCountOverflow,
                       "total_records " + std::to_string(total_records));
  }

  const unsigned char* p = head + kHeaderBytes;
  lay.meta.files.reserve(file_count);
  lay.file_ids.reserve(file_count);
  for (std::uint64_t i = 0; i < file_count; ++i, p += kFileEntryBytes) {
    const std::uint32_t id = get_u32(p);
    lay.meta.files.push_back(FileInfo{FileId{id}, get_u64(p + 4)});
    lay.file_ids.push_back(id);
  }
  std::sort(lay.file_ids.begin(), lay.file_ids.end());
  if (std::adjacent_find(lay.file_ids.begin(), lay.file_ids.end()) !=
      lay.file_ids.end()) {
    throw TraceIoError(TraceIoErrc::kBadFileTable, "duplicate file id");
  }

  std::uint64_t expected_offset = tables_end;
  std::uint64_t sum_records = 0;
  lay.meta.processes.reserve(proc_count);
  lay.extents.reserve(proc_count);
  for (std::uint64_t i = 0; i < proc_count; ++i, p += kProcEntryBytes) {
    BinaryTraceSource::Extent e;
    const std::uint32_t pid = get_u32(p);
    const std::uint32_t node = get_u32(p + 4);
    e.records = get_u64(p + 8);
    e.offset = get_u64(p + 16);
    e.bytes = get_u64(p + 24);
    // Streams are laid out back to back in table order; requiring that
    // makes overlap impossible and trailing-garbage detection exact.
    if (e.offset != expected_offset || e.bytes > file_size - e.offset) {
      throw TraceIoError(TraceIoErrc::kBadProcessTable,
                         "stream " + std::to_string(i) +
                             " not contiguous or out of bounds");
    }
    if (e.records > e.bytes / kMinRecordBytes ||
        (e.records == 0 && e.bytes != 0)) {
      throw TraceIoError(TraceIoErrc::kCountOverflow,
                         "stream " + std::to_string(i) + " claims " +
                             std::to_string(e.records) + " records in " +
                             std::to_string(e.bytes) + " bytes");
    }
    expected_offset += e.bytes;
    sum_records += e.records;
    lay.meta.processes.push_back(
        TraceMeta::ProcessInfo{ProcId{pid}, NodeId{node}, e.records});
    lay.extents.push_back(e);
  }
  if (sum_records != total_records) {
    throw TraceIoError(TraceIoErrc::kHeaderCorrupt,
                       "total_records disagrees with process table");
  }
  lay.meta.total_records = total_records;
  if (expected_offset != file_size) {
    throw TraceIoError(TraceIoErrc::kTrailingGarbage,
                       std::to_string(file_size - expected_offset) +
                           " bytes after last record stream");
  }
  return lay;
}

/// Seekable-stream size, restoring nothing (callers reposition anyway).
std::uint64_t stream_size(std::istream& in) {
  in.clear();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0 || !in) {
    throw TraceIoError(TraceIoErrc::kTruncated, "stream is not seekable");
  }
  return static_cast<std::uint64_t>(end);
}

class ChunkedCursor final : public RecordCursor {
 public:
  ChunkedCursor(std::istream& in, const BinaryTraceSource::Extent& extent,
                const std::vector<std::uint32_t>& file_ids, std::size_t chunk)
      : in_(&in),
        file_ids_(&file_ids),
        chunk_(std::max<std::size_t>(chunk, kMaxRecordBytes)),
        file_pos_(extent.offset),
        stream_end_(extent.offset + extent.bytes),
        remaining_(extent.records) {}

  bool next(TraceRecord& out) override {
    if (remaining_ == 0) return false;
    refill_if_low();
    const unsigned char* p = data() + pos_;
    const unsigned char* end = data() + buf_.size();
    out = decode_record(&p, end, state_, *file_ids_);
    pos_ = static_cast<std::size_t>(p - data());
    --remaining_;
    if (remaining_ == 0) {
      // The record count and the byte count must agree exactly.
      if (pos_ != buf_.size() || file_pos_ != stream_end_) {
        throw TraceIoError(TraceIoErrc::kBadRecord,
                           "stream bytes left over after last record");
      }
    }
    return true;
  }

 private:
  [[nodiscard]] const unsigned char* data() const {
    return reinterpret_cast<const unsigned char*>(buf_.data());
  }

  void refill_if_low() {
    if (buf_.size() - pos_ >= kMaxRecordBytes || file_pos_ == stream_end_) {
      return;
    }
    buf_.erase(0, pos_);
    pos_ = 0;
    const auto want = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_, stream_end_ - file_pos_));
    const std::size_t old = buf_.size();
    buf_.resize(old + want);
    in_->clear();
    in_->seekg(static_cast<std::streamoff>(file_pos_));
    in_->read(buf_.data() + old, static_cast<std::streamsize>(want));
    if (static_cast<std::size_t>(in_->gcount()) != want) {
      throw TraceIoError(TraceIoErrc::kTruncated,
                         "record stream ends early (file shrank?)");
    }
    file_pos_ += want;
  }

  std::istream* in_;
  const std::vector<std::uint32_t>* file_ids_;
  std::size_t chunk_;
  std::uint64_t file_pos_;    // next unread byte of this stream in the file
  std::uint64_t stream_end_;  // absolute end of this stream
  std::uint64_t remaining_;   // records still to decode
  std::string buf_;
  std::size_t pos_ = 0;
  DeltaState state_;
};

}  // namespace

void save_binary_trace(std::ostream& os, const Trace& trace) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u16(out, kVersion);
  put_u16(out, trace.serialize_per_node ? kFlagSerializePerNode : 0);
  put_u64(out, trace.block_size);
  put_u32(out, static_cast<std::uint32_t>(trace.files.size()));
  put_u32(out, static_cast<std::uint32_t>(trace.processes.size()));
  put_u64(out, trace.total_records());
  put_u64(out, trace.total_io_ops());
  LAP_ENSURES(out.size() == kHeaderBytes);

  for (const FileInfo& f : trace.files) {
    put_u32(out, raw(f.id));
    put_u64(out, f.size);
  }

  std::vector<std::string> streams;
  streams.reserve(trace.processes.size());
  for (const ProcessTrace& p : trace.processes) {
    std::string s;
    DeltaState st;
    for (const TraceRecord& r : p.records) encode_record(s, r, st);
    streams.push_back(std::move(s));
  }

  std::uint64_t offset = out.size() + trace.processes.size() * kProcEntryBytes;
  for (std::size_t i = 0; i < trace.processes.size(); ++i) {
    const ProcessTrace& p = trace.processes[i];
    put_u32(out, raw(p.pid));
    put_u32(out, raw(p.node));
    put_u64(out, p.records.size());
    put_u64(out, offset);
    put_u64(out, streams[i].size());
    offset += streams[i].size();
  }
  for (const std::string& s : streams) out += s;

  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!os) throw TraceIoError(TraceIoErrc::kIoFailure, "lapt: write failed");
}

BinaryTraceSource::BinaryTraceSource(std::unique_ptr<std::istream> in,
                                     std::size_t chunk_bytes)
    : in_(std::move(in)), chunk_(chunk_bytes) {
  LAP_EXPECTS(in_ != nullptr);
  const std::uint64_t size = stream_size(*in_);

  // Read the header alone first (its counts size the tables), then the
  // header plus both tables, then hand everything to the validator.
  std::string head(kHeaderBytes, '\0');
  in_->clear();
  in_->seekg(0);
  in_->read(head.data(), static_cast<std::streamsize>(head.size()));
  const auto got = static_cast<std::uint64_t>(in_->gcount());
  if (got < kHeaderBytes) {
    // Always throws kTruncated for a short header.
    parse_layout(reinterpret_cast<const unsigned char*>(head.data()), got,
                 size);
  }
  const std::uint64_t file_count =
      get_u32(reinterpret_cast<const unsigned char*>(head.data()) + 16);
  const std::uint64_t proc_count =
      get_u32(reinterpret_cast<const unsigned char*>(head.data()) + 20);
  const std::uint64_t tables_end = kHeaderBytes +
                                   file_count * kFileEntryBytes +
                                   proc_count * kProcEntryBytes;
  if (tables_end > size) {
    throw TraceIoError(TraceIoErrc::kTruncated,
                       "file/process tables extend past end of input");
  }
  head.resize(static_cast<std::size_t>(tables_end));
  in_->clear();
  in_->seekg(0);
  in_->read(head.data(), static_cast<std::streamsize>(head.size()));
  if (static_cast<std::uint64_t>(in_->gcount()) != tables_end) {
    throw TraceIoError(TraceIoErrc::kTruncated, "tables");
  }
  Layout lay = parse_layout(reinterpret_cast<const unsigned char*>(head.data()),
                            tables_end, size);
  meta_ = std::move(lay.meta);
  extents_ = std::move(lay.extents);
  file_ids_ = std::move(lay.file_ids);
}

std::unique_ptr<BinaryTraceSource> BinaryTraceSource::open_file(
    const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*in) throw TraceIoError(TraceIoErrc::kIoFailure, "cannot open " + path);
  return std::make_unique<BinaryTraceSource>(std::move(in));
}

std::unique_ptr<RecordCursor> BinaryTraceSource::open(std::size_t index) {
  LAP_EXPECTS(index < extents_.size());
  return std::make_unique<ChunkedCursor>(*in_, extents_[index], file_ids_,
                                         chunk_);
}

Trace load_binary_trace(std::istream& is) {
  BinaryTraceSource src(
      [&is]() -> std::unique_ptr<std::istream> {
        // Slurp so arbitrary (even non-seekable) istreams work and the
        // trailing-garbage check sees the true end of input.
        auto owned = std::make_unique<std::stringstream>(
            std::ios::in | std::ios::out | std::ios::binary);
        *owned << is.rdbuf();
        return owned;
      }(),
      /*chunk_bytes=*/1 << 20);
  Trace t;
  const TraceMeta& m = src.meta();
  t.block_size = m.block_size;
  t.serialize_per_node = m.serialize_per_node;
  t.files = m.files;
  t.processes.reserve(m.processes.size());
  std::uint64_t io_ops = 0;
  for (std::size_t i = 0; i < m.processes.size(); ++i) {
    ProcessTrace p;
    p.pid = m.processes[i].pid;
    p.node = m.processes[i].node;
    p.records.reserve(static_cast<std::size_t>(m.processes[i].records));
    auto cur = src.open(i);
    TraceRecord r;
    while (cur->next(r)) {
      if (r.op == TraceOp::kRead || r.op == TraceOp::kWrite) ++io_ops;
      p.records.push_back(r);
    }
    t.processes.push_back(std::move(p));
  }
  if (io_ops != m.total_io_ops) {
    throw TraceIoError(TraceIoErrc::kHeaderCorrupt,
                       "total_io_ops disagrees with records");
  }
  return t;
}

bool is_lapt_path(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".lapt") == 0;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceIoError(TraceIoErrc::kIoFailure, "cannot open " + path);
  char magic[4] = {};
  in.read(magic, 4);
  const bool binary = in.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0;
  in.clear();
  in.seekg(0);
  return binary ? load_binary_trace(in) : Trace::load(in);
}

void save_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw TraceIoError(TraceIoErrc::kIoFailure,
                       "cannot open " + path + " for writing");
  }
  if (is_lapt_path(path)) {
    save_binary_trace(out, trace);
  } else {
    trace.save(out);
  }
  if (!out) throw TraceIoError(TraceIoErrc::kIoFailure, "write failed: " + path);
}

}  // namespace lap
