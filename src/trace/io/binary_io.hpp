// `.lapt` binary trace I/O: writer, strict validating loader, and the
// bounded-memory streaming source.  Wire layout in format.hpp; design
// rationale in DESIGN.md §11.
//
// The loader and the streaming source share one decode path, and both are
// strict: any malformed input — truncated header, wrong magic, newer
// version, impossible record counts, out-of-range file ids, undecodable
// records, trailing bytes — raises a TraceIoError with a typed code.
// Nothing is ever silently dropped, and no input can invoke UB.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/io/source.hpp"

namespace lap {

/// Serialise `trace` in LAPT v1 format.  Throws std::runtime_error if the
/// stream fails.
void save_binary_trace(std::ostream& os, const Trace& trace);

/// Parse and fully validate a LAPT image (every record is decoded, counts
/// cross-checked, trailing bytes rejected).  Throws TraceIoError.
[[nodiscard]] Trace load_binary_trace(std::istream& is);

/// Streaming reader: validates the header and tables up front, then decodes
/// each process's record stream in fixed-size chunks as the replay pulls on
/// it — memory is O(live cursors x chunk), not O(records).  The stream must
/// be seekable (file or string stream); record-level corruption therefore
/// surfaces lazily, as a TraceIoError from RecordCursor::next.  Like every
/// TraceSource, an instance must not be shared between concurrent runs.
class BinaryTraceSource final : public TraceSource {
 public:
  /// Takes ownership of a seekable stream.  Throws TraceIoError.
  explicit BinaryTraceSource(std::unique_ptr<std::istream> in,
                             std::size_t chunk_bytes = 64 * 1024);

  /// Opens `path`; throws std::runtime_error when unreadable.
  [[nodiscard]] static std::unique_ptr<BinaryTraceSource> open_file(
      const std::string& path);

  [[nodiscard]] const TraceMeta& meta() const override { return meta_; }
  [[nodiscard]] std::unique_ptr<RecordCursor> open(std::size_t index) override;

  /// Where one process's record stream lives in the file (exposed for the
  /// decoder internals; not useful to callers).
  struct Extent {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t records = 0;
  };

 private:
  std::unique_ptr<std::istream> in_;
  std::size_t chunk_;
  TraceMeta meta_;
  std::vector<Extent> extents_;
  std::vector<std::uint32_t> file_ids_;  // sorted, for record validation
};

/// True when `path` names a LAPT file by extension (".lapt").
[[nodiscard]] bool is_lapt_path(const std::string& path);

/// Load a trace from disk, sniffing the format by content: LAPT magic ->
/// binary, anything else -> "# lap-trace v1" text.  Throws TraceIoError /
/// std::invalid_argument on malformed input, std::runtime_error when the
/// file cannot be read.
[[nodiscard]] Trace load_trace_file(const std::string& path);

/// Capture `trace` to disk, picking the format by extension (".lapt" ->
/// binary, anything else -> text).  Throws std::runtime_error on I/O
/// failure.
void save_trace_file(const std::string& path, const Trace& trace);

}  // namespace lap
