#include "trace/io/champsim.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "trace/io/format.hpp"

namespace lap {
namespace {

enum class AccessType { kLoad, kStore };

std::optional<AccessType> type_keyword(std::string_view tok) {
  std::string up;
  up.reserve(tok.size());
  for (char c : tok) up.push_back(static_cast<char>(std::toupper(
      static_cast<unsigned char>(c))));
  if (up == "LOAD" || up == "L" || up == "R" || up == "READ") {
    return AccessType::kLoad;
  }
  if (up == "STORE" || up == "S" || up == "W" || up == "WRITE" ||
      up == "RFO") {
    return AccessType::kStore;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> parse_number(std::string_view tok) {
  int base = 10;
  if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    tok.remove_prefix(2);
    base = 16;
  }
  if (tok.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v, base);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) return std::nullopt;
  return v;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == ',' ||
            line[i] == '\r')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != ',' && line[i] != '\r') {
      ++i;
    }
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

struct Access {
  AccessType type = AccessType::kLoad;
  std::uint64_t addr = 0;
  std::optional<std::uint64_t> cycle;
};

/// One line -> one access, or nullopt for junk.
std::optional<Access> parse_line(std::string_view line) {
  const std::vector<std::string_view> fields = split_fields(line);
  if (fields.empty()) return std::nullopt;

  std::optional<AccessType> type;
  std::vector<std::uint64_t> nums;
  for (std::string_view f : fields) {
    if (!type) {
      if (auto t = type_keyword(f)) {
        type = t;
        continue;
      }
    }
    if (auto n = parse_number(f)) nums.push_back(*n);
  }

  Access a;
  if (type) {
    // Typed line: the first number is the address.
    if (nums.empty()) return std::nullopt;
    a.type = *type;
    a.addr = nums[0];
    return a;
  }
  // Load-trace CSV: instr_id, cycle, addr[, pc[, hit]] — all loads.
  if (nums.size() < 3) return std::nullopt;
  a.type = AccessType::kLoad;
  a.cycle = nums[1];
  a.addr = nums[2];
  return a;
}

}  // namespace

Trace ingest_champsim(std::istream& is, const ChampsimIngestOptions& opts,
                      ChampsimIngestStats* stats) {
  if (opts.block_size == 0 || opts.line_bytes == 0 ||
      opts.bytes_per_file == 0 || opts.nodes == 0 ||
      opts.ns_per_cycle < 0.0) {
    throw TraceIoError(TraceIoErrc::kBadOptions, "champsim ingest");
  }

  Trace t;
  t.block_size = opts.block_size;
  t.serialize_per_node = false;

  // One client process per node; file f lives with client f % nodes, so a
  // striped address stream becomes cross-node traffic.
  std::vector<ProcessTrace> procs(opts.nodes);
  std::vector<std::optional<std::uint64_t>> last_cycle(opts.nodes);
  for (std::uint32_t i = 0; i < opts.nodes; ++i) {
    procs[i].pid = ProcId{i + 1};
    procs[i].node = NodeId{i};
  }
  std::map<std::uint32_t, Bytes> file_end;  // max byte touched, per file

  ChampsimIngestStats local;
  ChampsimIngestStats& st = stats != nullptr ? *stats : local;
  st = ChampsimIngestStats{};

  std::string line;
  while (std::getline(is, line)) {
    std::string_view sv(line);
    while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t')) {
      sv.remove_prefix(1);
    }
    if (sv.empty() || sv.front() == '#') continue;
    ++st.lines;
    const std::optional<Access> access = parse_line(sv);
    if (!access) {
      ++st.skipped;
      continue;
    }
    (access->type == AccessType::kLoad ? st.loads : st.stores) += 1;

    const std::uint64_t file = access->addr / opts.bytes_per_file;
    // Cap the file id space; gigantic sparse addresses fold back in.
    const auto fid = static_cast<std::uint32_t>(file & 0x00ffffffu);
    const Bytes in_file = access->addr % opts.bytes_per_file;
    const Bytes offset = (in_file / opts.block_size) * opts.block_size;
    const Bytes length =
        std::min<Bytes>(opts.line_bytes, opts.bytes_per_file - in_file);

    const std::uint32_t shard = fid % opts.nodes;
    ProcessTrace& proc = procs[shard];

    TraceRecord r;
    r.op = access->type == AccessType::kLoad ? TraceOp::kRead : TraceOp::kWrite;
    r.file = FileId{fid};
    r.offset = offset;
    r.length = length;
    r.think = SimTime::zero();
    if (access->cycle && last_cycle[shard] &&
        *access->cycle > *last_cycle[shard]) {
      r.think = SimTime::ns(static_cast<std::int64_t>(
          static_cast<double>(*access->cycle - *last_cycle[shard]) *
          opts.ns_per_cycle));
    }
    if (access->cycle) last_cycle[shard] = access->cycle;

    Bytes& end = file_end[fid];
    end = std::max(end, offset + std::max<Bytes>(length, 1));
    proc.records.push_back(r);
  }

  if (st.loads + st.stores == 0) {
    throw TraceIoError(TraceIoErrc::kBadRecord,
                       "champsim ingest: no parseable accesses in input");
  }

  for (const auto& [fid, end] : file_end) {
    // Round the preamble size up to whole blocks so the last access's
    // block exists in full.
    const Bytes size = ((end + opts.block_size - 1) / opts.block_size) *
                       opts.block_size;
    t.files.push_back(FileInfo{FileId{fid}, size});
  }
  for (ProcessTrace& p : procs) {
    if (!p.records.empty()) t.processes.push_back(std::move(p));
  }
  return t;
}

}  // namespace lap
