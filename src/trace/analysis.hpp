// Workload characterisation, in the vocabulary of the trace studies the
// paper builds on (CHARISMA: Nieuwejaar et al.; Sprite: Baker et al.):
// request-size distribution, access-pattern classification (sequential /
// strided / irregular), sharing degree, file lifetimes.  Used by the
// trace_tool, the seed-sensitivity bench and the generator tests to check
// that synthetic traces keep the published characteristics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>

#include "trace/trace.hpp"

namespace lap {

/// Per-(process, file) stream classification.
enum class StreamPattern {
  kSequential,   // every request starts where the previous ended
  kStrided,      // constant non-contiguous interval between requests
  kIrregular,    // anything else
  kSingle,       // only one request: nothing to classify
};

[[nodiscard]] const char* to_string(StreamPattern p);

struct TraceProfile {
  // Volume.
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;

  // Request sizes (in blocks).
  double mean_read_blocks = 0.0;
  std::uint64_t max_read_blocks = 0;
  /// Share of read requests of at least 8 blocks ("large" in the paper's
  /// sense: what makes IS_PPM's size predictions aggressive).
  double large_read_share = 0.0;

  // Access patterns, by (process, file) stream; shares of classified
  // streams (kSingle excluded from the denominator).
  std::map<StreamPattern, std::uint64_t> stream_counts;
  double sequential_share = 0.0;
  double strided_share = 0.0;

  // Sharing.
  double mean_readers_per_file = 0.0;  // distinct processes reading a file
  double shared_file_share = 0.0;      // files with >= 2 readers

  // File population.
  double mean_file_blocks = 0.0;
  std::uint64_t files_deleted = 0;
  double deleted_share = 0.0;

  void print(std::ostream& os) const;
};

/// Analyse a trace (single pass over all records).
[[nodiscard]] TraceProfile profile_trace(const Trace& trace);

}  // namespace lap
