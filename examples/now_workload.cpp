// A network-of-workstations scenario: Sprite-like sessions on the NOW
// machine (the paper's Figures 6/7 setting), showing how the cooperative
// cache and linear aggressive prefetching behave as the per-node cache
// grows.
//
//   ./now_workload [--algo Ln_Agr_IS_PPM:1] [--scale 1.0] [--fs pafs|xfs]
#include <iostream>

#include "driver/report.hpp"
#include "driver/sweep.hpp"
#include "trace/sprite_gen.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);

  SpriteParams wp;
  wp.scale = flags.get_double("scale", 1.0);
  const Trace trace = generate_sprite(wp);

  RunConfig base;
  base.machine = MachineConfig::now();
  base.fs = flags.get("fs", "pafs") == "xfs" ? FsKind::kXfs : FsKind::kPafs;

  print_experiment_header(std::cout, "Sprite sessions on the NOW machine",
                          base.machine, trace, base);

  const AlgorithmSpec algo =
      AlgorithmSpec::parse(flags.get("algo", "Ln_Agr_IS_PPM:1"));
  SweepSpec spec;
  spec.cache_sizes = paper_cache_sizes();
  spec.algorithms = {AlgorithmSpec::parse("NP"), algo};
  const auto results =
      run_sweep(trace, base, spec,
                static_cast<std::size_t>(flags.get_int("threads", 0)));

  print_read_time_series(std::cout, spec, results);
  print_diagnostics(std::cout, spec, results);

  std::cout << "\nper-size speedup of " << algo.name() << " over NP:\n";
  for (std::size_t c = 0; c < spec.cache_sizes.size(); ++c) {
    const double np = results[c].avg_read_ms;
    const double pf = results[spec.cache_sizes.size() + c].avg_read_ms;
    std::cout << "  " << spec.cache_sizes[c] / (1024 * 1024)
              << " MB/node: " << fmt_double(pf > 0 ? np / pf : 0.0, 2)
              << "x\n";
  }
  return 0;
}
