// lap_check: the simulation fuzzer.
//
// Fuzz mode (default) draws scenarios from a seed range, replays each under
// PAFS and xFS with the invariant oracle attached, diffs traced vs untraced
// runs, and then pushes the trace through the serialization stage: text and
// binary round-trips plus binary-loaded and streamed replays, each diffed
// against the unserialized run.  The first failure is shrunk to a minimal
// scenario, saved as a repro file, and the exit status is 1.
//
//   ./lap_check [--scenarios 200] [--seed 1] [--repro-out lap_check.repro]
//               [--no-serialization] [--capture-dir <dir>]
//   ./lap_check --repro lap_check.repro     # replay a saved failure
//   ./lap_check --golden [--scenarios 32]   # print the golden corpus table
//
// `--capture-dir` records every generated scenario's trace as
// `<dir>/scenario-<seed>.lapt` before running it — the capture sink that
// turns any fuzzer corpus into replayable `.lapt` workloads.
//
// The base seed is always printed, so a failing CI run reproduces with
// `--scenarios 1 --seed <seed_of_failure>` even without the artifact.
//
// `--golden` regenerates tests/test_container_golden.cpp's corpus table:
// it prints `{seed, pafs_hash, xfs_hash},` rows in the committed format.
// Only legitimate after an *intentional* semantic change — paste the rows,
// note the recapture in the table's comment, and say why in the commit.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "check/differential.hpp"
#include "check/golden.hpp"
#include "check/shrink.hpp"
#include "trace/io/binary_io.hpp"
#include "util/flags.hpp"

namespace {

lap::CheckReport check_all(const lap::Scenario& s, bool serialization) {
  lap::CheckReport report = lap::run_checked(s);
  if (serialization) {
    lap::CheckReport ser = lap::check_serialization(s);
    for (std::string& v : ser.violations) {
      report.violations.push_back(std::move(v));
    }
    for (std::string& d : ser.diffs) report.diffs.push_back(std::move(d));
  }
  return report;
}

int print_golden_table(std::uint64_t base_seed, std::int64_t n) {
  std::cout << "// Captured with `lap_check --golden` on the sequential "
               "engine.\n";
  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const std::uint64_t pafs =
        lap::golden_scenario_hash(seed, lap::FsKind::kPafs);
    const std::uint64_t xfs = lap::golden_scenario_hash(seed, lap::FsKind::kXfs);
    std::cout << "    {" << std::dec << seed << ", 0x" << std::hex
              << std::setfill('0') << std::setw(16) << pafs << "ULL, 0x"
              << std::setw(16) << xfs << "ULL},\n"
              << std::dec;
  }
  return 0;
}

int replay(const std::string& path, bool serialization) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  const lap::Scenario s = lap::load_scenario(in);
  const lap::CheckReport report = check_all(s, serialization);
  std::cout << report.summary() << "\n";
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const lap::Flags flags(argc, argv);
  const bool serialization = !flags.get_bool("no-serialization", false);
  if (const auto repro = flags.get_opt("repro")) {
    return replay(*repro, serialization);
  }

  if (flags.get_bool("golden", false)) {
    return print_golden_table(
        static_cast<std::uint64_t>(flags.get_int("seed", 1)),
        flags.get_int("scenarios", 32));
  }

  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::int64_t n = flags.get_int("scenarios", 200);
  const std::string repro_out = flags.get("repro-out", "lap_check.repro");
  const auto capture_dir = flags.get_opt("capture-dir");
  std::cout << "lap_check: " << n << " scenarios from seed " << base_seed
            << (serialization ? "" : " (serialization stage off)") << "\n";

  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const lap::Scenario scenario = lap::generate_scenario(seed);
    if (capture_dir) {
      lap::save_trace_file(
          *capture_dir + "/scenario-" + std::to_string(seed) + ".lapt",
          scenario.trace);
    }
    const lap::CheckReport report = check_all(scenario, serialization);
    if (report.ok()) {
      if ((i + 1) % 50 == 0) {
        std::cout << "  " << (i + 1) << "/" << n << " ok\n";
      }
      continue;
    }

    std::cout << "FAIL at seed " << seed << "\n"
              << report.summary() << "\n\nshrinking...\n";
    const lap::Scenario small = lap::shrink_scenario(
        scenario, [serialization](const lap::Scenario& c) {
          return !check_all(c, serialization).ok();
        });
    std::cout << "shrunk " << scenario.total_records() << " -> "
              << small.total_records() << " records\n"
              << check_all(small, serialization).summary() << "\n";

    std::ofstream out(repro_out);
    if (out) {
      lap::save_scenario(out, small);
      std::cout << "repro: " << repro_out << " (replay with --repro "
                << repro_out << ")\n";
    } else {
      std::ostringstream os;
      lap::save_scenario(os, small);
      std::cerr << "cannot write " << repro_out
                << "; repro follows:\n" << os.str();
    }
    return 1;
  }
  std::cout << "all " << n << " scenarios ok\n";
  return 0;
}
