// lap_check: the simulation fuzzer.
//
// Fuzz mode (default) draws scenarios from a seed range, replays each under
// PAFS and xFS with the invariant oracle attached, and diffs traced vs
// untraced runs.  The first failure is shrunk to a minimal scenario, saved
// as a repro file, and the exit status is 1.
//
//   ./lap_check [--scenarios 200] [--seed 1] [--repro-out lap_check.repro]
//   ./lap_check --repro lap_check.repro     # replay a saved failure
//
// The base seed is always printed, so a failing CI run reproduces with
// `--scenarios 1 --seed <seed_of_failure>` even without the artifact.
#include <fstream>
#include <iostream>
#include <sstream>

#include "check/differential.hpp"
#include "check/shrink.hpp"
#include "util/flags.hpp"

namespace {

int replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  const lap::Scenario s = lap::load_scenario(in);
  const lap::CheckReport report = lap::run_checked(s);
  std::cout << report.summary() << "\n";
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const lap::Flags flags(argc, argv);
  if (const auto repro = flags.get_opt("repro")) return replay(*repro);

  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::int64_t n = flags.get_int("scenarios", 200);
  const std::string repro_out = flags.get("repro-out", "lap_check.repro");
  std::cout << "lap_check: " << n << " scenarios from seed " << base_seed
            << "\n";

  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const lap::Scenario scenario = lap::generate_scenario(seed);
    const lap::CheckReport report = lap::run_checked(scenario);
    if (report.ok()) {
      if ((i + 1) % 50 == 0) {
        std::cout << "  " << (i + 1) << "/" << n << " ok\n";
      }
      continue;
    }

    std::cout << "FAIL at seed " << seed << "\n"
              << report.summary() << "\n\nshrinking...\n";
    const lap::Scenario small = lap::shrink_scenario(
        scenario,
        [](const lap::Scenario& c) { return !lap::run_checked(c).ok(); });
    std::cout << "shrunk " << scenario.total_records() << " -> "
              << small.total_records() << " records\n"
              << lap::run_checked(small).summary() << "\n";

    std::ofstream out(repro_out);
    if (out) {
      lap::save_scenario(out, small);
      std::cout << "repro: " << repro_out << " (replay with --repro "
                << repro_out << ")\n";
    } else {
      std::ostringstream os;
      lap::save_scenario(os, small);
      std::cerr << "cannot write " << repro_out
                << "; repro follows:\n" << os.str();
    }
    return 1;
  }
  std::cout << "all " << n << " scenarios ok\n";
  return 0;
}
