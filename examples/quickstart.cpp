// Quickstart: build a small CHARISMA-like workload, run it through PAFS on
// the paper's PM machine with and without linear aggressive prefetching,
// and print what changed.
//
//   ./quickstart [--cache-mb 4] [--scale 0.5] [--algo Ln_Agr_IS_PPM:1]
//                [--trace-out t.json] [--metrics-json m.json]
//   ./quickstart --repro failure.repro     # replay a lap_check repro file
//
// --algo takes any registered name: the paper set (NP, OBA, IS_PPM:j and
// their Ln_Agr_/Agr_ variants), the baselines (VK_PPM:j, WholeFile,
// Informed), fixed-degree points (Dg<k>_Agr_*), accuracy-feedback
// throttling (Fb_Agr_*), and Best-Offset (BO:d).
//
// With --trace-out, the prefetching run streams a Chrome trace_event JSON
// (open it at https://ui.perfetto.dev).  With --metrics-json, both runs'
// aggregates plus the sampled counter registry are dumped as JSON.
#include <fstream>
#include <iostream>
#include <memory>

#include "check/differential.hpp"
#include "driver/report.hpp"
#include "driver/simulation.hpp"
#include "obs/counters.hpp"
#include "driver/metrics_json.hpp"
#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "trace/charisma_gen.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using lap::operator""_MiB;
  const lap::Flags flags(argc, argv);
  if (const auto repro = flags.get_opt("repro")) {
    // Replay a scenario saved by the lap_check fuzzer through the full
    // checked pipeline (oracle + traced/untraced differential).
    std::ifstream in(*repro);
    if (!in) {
      std::cerr << "cannot open " << *repro << "\n";
      return 2;
    }
    const lap::CheckReport report = lap::run_checked(lap::load_scenario(in));
    std::cout << report.summary() << "\n";
    return report.ok() ? 0 : 1;
  }
  const lap::ObsOptions obs = lap::parse_obs_options(flags);

  lap::CharismaParams wp;
  wp.scale = flags.get_double("scale", 0.5);
  wp.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const lap::Trace trace = lap::generate_charisma(wp);

  lap::RunConfig cfg;
  cfg.machine = lap::MachineConfig::pm();
  cfg.fs = lap::FsKind::kPafs;
  cfg.cache_per_node =
      static_cast<lap::Bytes>(flags.get_int("cache-mb", 4)) * 1_MiB;

  std::cout << "LAP quickstart — " << cfg.machine.describe() << "\n";
  std::cout << "workload: " << trace.processes.size() << " processes, "
            << trace.files.size() << " files, " << trace.total_io_ops()
            << " I/O ops\n\n";

  cfg.algorithm = lap::AlgorithmSpec::parse("NP");
  const lap::RunResult base = lap::run_simulation(trace, cfg);
  lap::print_run_summary(std::cout, base);

  // Both runs start at simulated t=0, so the trace records only the second
  // (prefetching) run — overlaying both on the same tracks would be
  // unreadable.  The metrics JSON carries both runs.
  std::ofstream trace_file;
  std::unique_ptr<lap::TraceSink> sink;
  lap::CounterRegistry counters;
  lap::SpanCollector spans;
  if (obs.trace_out) {
    trace_file.open(*obs.trace_out);
    if (!trace_file) {
      std::cerr << "cannot open " << *obs.trace_out << " for writing\n";
      return 1;
    }
    sink = std::make_unique<lap::TraceSink>(trace_file);
    cfg.trace = sink.get();
  }
  if (obs.any()) {
    cfg.counters = &counters;
    cfg.counter_sample_interval = obs.sample_interval;
    cfg.spans = &spans;  // span.* counters + async lifecycle tracks
  }

  cfg.algorithm =
      lap::AlgorithmSpec::parse(flags.get("algo", "Ln_Agr_IS_PPM:1"));
  const lap::RunResult pref = lap::run_simulation(trace, cfg);
  lap::print_run_summary(std::cout, pref);

  if (sink != nullptr) {
    sink->close();
    std::cout << "\ntrace: " << *obs.trace_out << " (" << sink->events_written()
              << " events; open at https://ui.perfetto.dev)\n";
  }

  if (obs.metrics_json) {
    std::ofstream mf(*obs.metrics_json);
    if (!mf) {
      std::cerr << "cannot open " << *obs.metrics_json << " for writing\n";
      return 1;
    }
    lap::RunManifest manifest = lap::make_manifest("quickstart", cfg, trace);
    manifest.workload = "charisma";
    manifest.workload_seed = wp.seed;
    if (obs.trace_out) manifest.trace_out = *obs.trace_out;
    lap::write_results_json(mf, manifest, {base, pref},
                            cfg.counters != nullptr ? &counters : nullptr);
    std::cout << (sink != nullptr ? "" : "\n") << "metrics: "
              << *obs.metrics_json << "\n";
  }

  if (pref.avg_read_ms > 0.0) {
    std::cout << "\nread-time speedup over NP: "
              << lap::fmt_double(base.avg_read_ms / pref.avg_read_ms, 2)
              << "x\n";
  }
  return 0;
}
