// Quickstart: build a small CHARISMA-like workload, run it through PAFS on
// the paper's PM machine with and without linear aggressive prefetching,
// and print what changed.
//
//   ./quickstart [--cache-mb 4] [--scale 0.5] [--algo Ln_Agr_IS_PPM:1]
#include <iostream>

#include "driver/report.hpp"
#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using lap::operator""_MiB;
  const lap::Flags flags(argc, argv);

  lap::CharismaParams wp;
  wp.scale = flags.get_double("scale", 0.5);
  wp.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const lap::Trace trace = lap::generate_charisma(wp);

  lap::RunConfig cfg;
  cfg.machine = lap::MachineConfig::pm();
  cfg.fs = lap::FsKind::kPafs;
  cfg.cache_per_node =
      static_cast<lap::Bytes>(flags.get_int("cache-mb", 4)) * 1_MiB;

  std::cout << "LAP quickstart — " << cfg.machine.describe() << "\n";
  std::cout << "workload: " << trace.processes.size() << " processes, "
            << trace.files.size() << " files, " << trace.total_io_ops()
            << " I/O ops\n\n";

  cfg.algorithm = lap::AlgorithmSpec::parse("NP");
  const lap::RunResult base = lap::run_simulation(trace, cfg);
  lap::print_run_summary(std::cout, base);

  cfg.algorithm =
      lap::AlgorithmSpec::parse(flags.get("algo", "Ln_Agr_IS_PPM:1"));
  const lap::RunResult pref = lap::run_simulation(trace, cfg);
  lap::print_run_summary(std::cout, pref);

  if (pref.avg_read_ms > 0.0) {
    std::cout << "\nread-time speedup over NP: "
              << lap::fmt_double(base.avg_read_ms / pref.avg_read_ms, 2)
              << "x\n";
  }
  return 0;
}
