// Trace utility: generate a workload trace to a file, inspect one, or
// replay it through a simulated file system.
//
//   ./trace_tool gen charisma out.trace [--scale 0.5] [--seed 7]
//   ./trace_tool gen sprite out.trace
//   ./trace_tool info out.trace
//   ./trace_tool stats out.trace        # workload characterisation
//   ./trace_tool run out.trace [--fs pafs|xfs] [--algo Ln_Agr_IS_PPM:1]
//                              [--cache-mb 4]
#include <fstream>
#include <iostream>

#include "driver/report.hpp"
#include "driver/simulation.hpp"
#include "trace/charisma_gen.hpp"
#include "trace/analysis.hpp"
#include "trace/sprite_gen.hpp"
#include "util/flags.hpp"

namespace {

int usage() {
  std::cerr << "usage: trace_tool gen <charisma|sprite> <file> |\n"
               "       trace_tool info <file> |\n"
               "       trace_tool run <file> [--fs pafs|xfs] [--algo A] "
               "[--cache-mb N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lap;
  using lap::operator""_MiB;
  const Flags flags(argc, argv);
  const auto& args = flags.positional();
  if (args.empty()) return usage();
  const std::string& cmd = args[0];

  if (cmd == "gen") {
    if (args.size() < 3) return usage();
    Trace trace;
    if (args[1] == "charisma") {
      CharismaParams p;
      p.scale = flags.get_double("scale", 1.0);
      if (flags.has("seed")) p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
      trace = generate_charisma(p);
    } else if (args[1] == "sprite") {
      SpriteParams p;
      p.scale = flags.get_double("scale", 1.0);
      if (flags.has("seed")) p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1999));
      trace = generate_sprite(p);
    } else {
      return usage();
    }
    std::ofstream out(args[2]);
    if (!out) {
      std::cerr << "cannot open " << args[2] << "\n";
      return 1;
    }
    trace.save(out);
    std::cout << "wrote " << trace.total_records() << " records ("
              << trace.total_io_ops() << " I/O ops, " << trace.files.size()
              << " files) to " << args[2] << "\n";
    return 0;
  }

  if (args.size() < 2) return usage();
  std::ifstream in(args[1]);
  if (!in) {
    std::cerr << "cannot open " << args[1] << "\n";
    return 1;
  }
  const Trace trace = Trace::load(in);

  if (cmd == "info") {
    std::cout << "processes:   " << trace.processes.size() << "\n"
              << "files:       " << trace.files.size() << "\n"
              << "records:     " << trace.total_records() << "\n"
              << "I/O ops:     " << trace.total_io_ops() << "\n"
              << "bytes read:  " << trace.total_bytes_read() << "\n"
              << "bytes written: " << trace.total_bytes_written() << "\n"
              << "nodes:       " << trace.node_span() << "\n"
              << "replay:      "
              << (trace.serialize_per_node ? "serialized per node"
                                           : "concurrent processes")
              << "\n";
    return 0;
  }

  if (cmd == "stats") {
    profile_trace(trace).print(std::cout);
    return 0;
  }

  if (cmd == "run") {
    RunConfig cfg;
    // Pick the machine by node span: the NOW preset covers 50 nodes.
    cfg.machine = trace.node_span() <= 50 ? MachineConfig::now()
                                          : MachineConfig::pm();
    cfg.fs = flags.get("fs", "pafs") == "xfs" ? FsKind::kXfs : FsKind::kPafs;
    cfg.algorithm = AlgorithmSpec::parse(flags.get("algo", "Ln_Agr_IS_PPM:1"));
    cfg.cache_per_node =
        static_cast<Bytes>(flags.get_int("cache-mb", 4)) * 1_MiB;
    const RunResult r = run_simulation(trace, cfg);
    print_run_summary(std::cout, r);
    return 0;
  }

  return usage();
}
