// Trace utility: generate, inspect, convert, ingest and replay workload
// traces in either of the two on-disk formats — "# lap-trace v1" text and
// LAPT binary (`.lapt`).  Output format follows the file extension;
// inspection/replay commands sniff the format from the file's content.
//
//   ./trace_tool gen charisma out.lapt [--scale 0.5] [--seed 7]
//                [--nodes 128]
//   ./trace_tool gen sprite out.trace
//   ./trace_tool info out.lapt
//   ./trace_tool stats out.trace        # workload characterisation
//   ./trace_tool convert in.trace out.lapt       # text <-> binary
//   ./trace_tool ingest-champsim in.txt out.lapt [--block-kb 8]
//                [--file-mb 1] [--line-bytes 64] [--ns-per-cycle 1]
//                [--nodes 1]
//   ./trace_tool run out.lapt [--fs pafs|xfs] [--algo Ln_Agr_IS_PPM:1]
//                             [--cache-mb 4] [--stream]
//                             [--metrics-json m.json] [--trace-out t.json]
//   ./trace_tool explain out.lapt [run options...] [--latency-breakdown]
//                [--wasted] [--block <file>:<index>] [--json] [--out r.txt]
//
// `run --stream` replays a `.lapt` file through the chunked streaming
// reader (bounded memory) instead of materialising it in RAM.  `run` and
// `explain` both accept the standard observability surface (--metrics-json,
// --trace-out, --obs-sample-ms); `explain` replays the workload with the
// span collector attached and renders the provenance audit (see
// DESIGN.md §13) to stdout or --out.
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "driver/explain.hpp"
#include "driver/report.hpp"
#include "driver/simulation.hpp"
#include "obs/counters.hpp"
#include "driver/metrics_json.hpp"
#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "trace/analysis.hpp"
#include "trace/charisma_gen.hpp"
#include "trace/io/binary_io.hpp"
#include "trace/io/champsim.hpp"
#include "trace/sprite_gen.hpp"
#include "util/flags.hpp"

namespace {

int usage() {
  std::cerr << "usage: trace_tool gen <charisma|sprite> <file> |\n"
               "       trace_tool info <file> | trace_tool stats <file> |\n"
               "       trace_tool convert <in> <out> |\n"
               "       trace_tool ingest-champsim <in> <out> |\n"
               "       trace_tool run <file> [--fs pafs|xfs] [--algo A] "
               "[--cache-mb N] [--stream]\n"
               "                 [--shards N] [--metrics-json M] "
               "[--trace-out T]\n"
               "       trace_tool explain <file> [run options] "
               "[--latency-breakdown] [--wasted]\n"
               "                 [--block F:I] [--json] [--out R]\n"
               "(.lapt extension selects the binary format on output; "
               "info/stats/run sniff the format)\n";
  return 2;
}

void print_info(const lap::Trace& trace) {
  std::cout << "processes:   " << trace.processes.size() << "\n"
            << "files:       " << trace.files.size() << "\n"
            << "records:     " << trace.total_records() << "\n"
            << "I/O ops:     " << trace.total_io_ops() << "\n"
            << "bytes read:  " << trace.total_bytes_read() << "\n"
            << "bytes written: " << trace.total_bytes_written() << "\n"
            << "nodes:       " << trace.node_span() << "\n"
            << "replay:      "
            << (trace.serialize_per_node ? "serialized per node"
                                         : "concurrent processes")
            << "\n";
}

lap::RunConfig run_config_for(const lap::Flags& flags, std::uint32_t nodes) {
  using namespace lap;
  using lap::operator""_MiB;
  RunConfig cfg;
  // Pick the machine by node span: the NOW preset covers 50 nodes.
  cfg.machine = nodes <= 50 ? MachineConfig::now() : MachineConfig::pm();
  cfg.fs = flags.get("fs", "pafs") == "xfs" ? FsKind::kXfs : FsKind::kPafs;
  cfg.algorithm = AlgorithmSpec::parse(flags.get("algo", "Ln_Agr_IS_PPM:1"));
  cfg.cache_per_node = static_cast<Bytes>(flags.get_int("cache-mb", 4)) * 1_MiB;
  // Execution policy only — any shard count replays bit-exactly (§14), so
  // --shards changes wall-clock, never the metrics this tool reports.
  cfg.shards = static_cast<int>(flags.get_int("shards", 1));
  return cfg;
}

// Shared replay path for `run` and `explain`: loads `path` (in-memory or,
// with --stream, through the bounded-memory binary reader), attaches the
// standard observability surface (--trace-out / --metrics-json /
// --obs-sample-ms) and the optional span collector, and runs to completion.
// Obs side-output notes go to stderr so `explain --json` on stdout stays a
// clean document.  Returns 0 on success.
int replay_trace(const lap::Flags& flags, const std::string& path,
                 lap::SpanCollector* spans, lap::RunResult* result) {
  using namespace lap;
  const ObsOptions obs = parse_obs_options(flags);

  Trace trace;  // backing storage for the in-memory path
  std::unique_ptr<TraceSource> source;
  if (flags.get_bool("stream", false)) {
    source = BinaryTraceSource::open_file(path);
  } else {
    trace = load_trace_file(path);
    source = std::make_unique<InMemoryTraceSource>(trace);
  }
  RunConfig cfg = run_config_for(flags, source->meta().node_span());
  // Any observability output implies provenance: span totals/histograms go
  // into the metrics document, async span tracks into the trace.
  SpanCollector obs_spans;
  if (spans == nullptr && obs.any()) spans = &obs_spans;
  cfg.spans = spans;

  std::ofstream trace_file;
  std::unique_ptr<TraceSink> sink;
  CounterRegistry counters;
  if (obs.trace_out) {
    trace_file.open(*obs.trace_out);
    if (!trace_file) {
      std::cerr << "cannot open " << *obs.trace_out << " for writing\n";
      return 1;
    }
    sink = std::make_unique<TraceSink>(trace_file);
    cfg.trace = sink.get();
  }
  if (obs.any()) {
    cfg.counters = &counters;
    cfg.counter_sample_interval = obs.sample_interval;
  }

  *result = run_simulation(*source, cfg);

  if (sink != nullptr) {
    sink->close();
    std::cerr << "trace: " << *obs.trace_out << " (" << sink->events_written()
              << " events; open at https://ui.perfetto.dev)\n";
  }
  if (obs.metrics_json) {
    std::ofstream mf(*obs.metrics_json);
    if (!mf) {
      std::cerr << "cannot open " << *obs.metrics_json << " for writing\n";
      return 1;
    }
    // The replayed file stands in for a generator name; everything else in
    // the manifest comes from the trace's own metadata.
    const TraceMeta& meta = source->meta();
    RunManifest manifest;
    manifest.title = "trace_tool";
    manifest.machine = cfg.machine.describe();
    manifest.nodes = std::max(cfg.machine.nodes, meta.node_span());
    manifest.disks = cfg.machine.disks;
    manifest.block_size = cfg.machine.block_size;
    manifest.workload = path;
    manifest.processes = meta.processes.size();
    manifest.files = meta.files.size();
    manifest.io_ops = meta.total_io_ops;
    manifest.fs = to_string(cfg.fs);
    manifest.algorithm = cfg.algorithm.name();
    manifest.cache_per_node = cfg.cache_per_node;
    manifest.sync_interval_ms = cfg.sync_interval.millis();
    manifest.warmup_fraction = cfg.warmup_fraction;
    if (obs.trace_out) manifest.trace_out = *obs.trace_out;
    write_results_json(mf, manifest, {*result}, &counters);
    std::cerr << "metrics: " << *obs.metrics_json << "\n";
  }
  return 0;
}

int main_checked(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);
  const auto& args = flags.positional();
  if (args.empty()) return usage();
  const std::string& cmd = args[0];

  if (cmd == "gen") {
    if (args.size() < 3) return usage();
    Trace trace;
    if (args[1] == "charisma") {
      CharismaParams p;
      p.scale = flags.get_double("scale", 1.0);
      p.nodes = static_cast<std::uint32_t>(
          flags.get_int("nodes", static_cast<std::int64_t>(p.nodes)));
      if (flags.has("seed")) p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
      trace = generate_charisma(p);
    } else if (args[1] == "sprite") {
      SpriteParams p;
      p.scale = flags.get_double("scale", 1.0);
      if (flags.has("seed")) p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1999));
      trace = generate_sprite(p);
    } else {
      return usage();
    }
    save_trace_file(args[2], trace);
    std::cout << "wrote " << trace.total_records() << " records ("
              << trace.total_io_ops() << " I/O ops, " << trace.files.size()
              << " files, " << (is_lapt_path(args[2]) ? "binary" : "text")
              << ") to " << args[2] << "\n";
    return 0;
  }

  if (cmd == "convert") {
    if (args.size() < 3) return usage();
    const Trace trace = load_trace_file(args[1]);
    save_trace_file(args[2], trace);
    std::cout << "converted " << args[1] << " -> " << args[2] << " ("
              << trace.total_records() << " records, "
              << (is_lapt_path(args[2]) ? "binary" : "text") << ")\n";
    return 0;
  }

  if (cmd == "ingest-champsim") {
    if (args.size() < 3) return usage();
    std::ifstream in(args[1]);
    if (!in) {
      std::cerr << "cannot open " << args[1] << "\n";
      return 1;
    }
    ChampsimIngestOptions opts;
    opts.block_size = static_cast<Bytes>(flags.get_int("block-kb", 8)) * 1024;
    opts.bytes_per_file =
        static_cast<Bytes>(flags.get_int("file-mb", 1)) * 1024 * 1024;
    opts.line_bytes = static_cast<Bytes>(flags.get_int("line-bytes", 64));
    opts.ns_per_cycle = flags.get_double("ns-per-cycle", 1.0);
    opts.nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 1));
    ChampsimIngestStats stats;
    const Trace trace = ingest_champsim(in, opts, &stats);
    save_trace_file(args[2], trace);
    std::cout << "ingested " << stats.lines << " lines (" << stats.loads
              << " loads, " << stats.stores << " stores, " << stats.skipped
              << " skipped) -> " << trace.files.size() << " files, "
              << trace.processes.size() << " processes in " << args[2]
              << "\n";
    return 0;
  }

  if (args.size() < 2) return usage();

  if (cmd == "info") {
    print_info(load_trace_file(args[1]));
    return 0;
  }

  if (cmd == "stats") {
    profile_trace(load_trace_file(args[1])).print(std::cout);
    return 0;
  }

  if (cmd == "run") {
    RunResult r;
    const int rc = replay_trace(flags, args[1], /*spans=*/nullptr, &r);
    if (rc != 0) return rc;
    print_run_summary(std::cout, r);
    return 0;
  }

  if (cmd == "explain") {
    ExplainOptions opts;
    opts.latency = flags.get_bool("latency-breakdown", false);
    opts.wasted = flags.get_bool("wasted", false);
    opts.json = flags.get_bool("json", false);
    if (const auto block = flags.get_opt("block")) {
      opts.block = parse_block_query(*block);
      if (!opts.block) {
        std::cerr << "malformed --block '" << *block
                  << "' (want <file>:<index>, e.g. 3:17)\n";
        return 2;
      }
    }
    SpanCollector spans;
    RunResult r;
    const int rc = replay_trace(flags, args[1], &spans, &r);
    if (rc != 0) return rc;
    if (const auto out = flags.get_opt("out")) {
      std::ofstream of(*out);
      if (!of) {
        std::cerr << "cannot open " << *out << " for writing\n";
        return 1;
      }
      write_explain(of, spans, r, opts);
      std::cerr << "explain: " << *out << "\n";
    } else {
      write_explain(std::cout, spans, r, opts);
    }
    return 0;
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return main_checked(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << "\n";
    return 1;
  }
}
