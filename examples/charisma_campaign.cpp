// A parallel-machine campaign: generate a CHARISMA-like workload, run the
// full algorithm set on PAFS and xFS at one cache size, and print a
// side-by-side comparison — the scenario of the paper's Figures 4 and 5 at
// a single x-axis point, with the supporting statistics the text discusses
// (prefetch volumes, mis-predictions, disk traffic).
//
//   ./charisma_campaign [--cache-mb 4] [--scale 1.0] [--seed 7] [--threads N]
#include <iostream>

#include "driver/report.hpp"
#include "driver/sweep.hpp"
#include "trace/charisma_gen.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  using lap::operator""_MiB;
  const Flags flags(argc, argv);

  CharismaParams wp;
  wp.scale = flags.get_double("scale", 1.0);
  if (flags.has("seed")) {
    wp.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  }
  const Trace trace = generate_charisma(wp);

  RunConfig base;
  base.machine = MachineConfig::pm();
  base.cache_per_node =
      static_cast<Bytes>(flags.get_int("cache-mb", 4)) * 1_MiB;

  print_experiment_header(std::cout, "CHARISMA campaign on the PM machine",
                          base.machine, trace, base);

  for (FsKind fs : {FsKind::kPafs, FsKind::kXfs}) {
    base.fs = fs;
    SweepSpec spec;
    spec.cache_sizes = {base.cache_per_node};
    spec.algorithms = AlgorithmSpec::paper_set();
    const auto results =
        run_sweep(trace, base, spec,
                  static_cast<std::size_t>(flags.get_int("threads", 0)));

    std::cout << "\n--- " << to_string(fs) << " @ "
              << base.cache_per_node / (1024 * 1024) << " MB/node ---\n";
    Table t({"algorithm", "read ms", "p95 ms", "hit", "prefetched", "mispred",
             "disk r/w"});
    for (const RunResult& r : results) {
      t.add_row({r.algorithm, fmt_double(r.avg_read_ms, 3),
                 fmt_double(r.read_p95_ms, 2), fmt_double(r.hit_ratio, 3),
                 std::to_string(r.prefetch_issued),
                 fmt_double(r.misprediction_ratio, 2),
                 std::to_string(r.disk_reads) + "/" +
                     std::to_string(r.disk_writes)});
    }
    t.print(std::cout);
  }
  return 0;
}
