// Pattern laboratory: feed a hand-picked access pattern to the predictors
// and watch what each algorithm would prefetch — a direct, interactive view
// of Section 2's machinery, including the paper's own worked example.
//
//   ./pattern_lab                      # the paper's Figure 1 pattern
//   ./pattern_lab --pattern seq        # sequential reads
//   ./pattern_lab --pattern strided    # 2 blocks every 8
//   ./pattern_lab --pattern wild       # an unpredictable stream
//   ./pattern_lab --order 3            # higher-order Markov predictor
#include <iostream>
#include <vector>

#include "core/aggressive.hpp"
#include "core/is_ppm.hpp"
#include "core/oba.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  const Flags flags(argc, argv);
  const std::string pattern = flags.get("pattern", "paper");
  const int order = static_cast<int>(flags.get_int("order", 1));
  const std::uint32_t file_blocks =
      static_cast<std::uint32_t>(flags.get_int("file-blocks", 48));

  // Build the request stream.
  std::vector<std::pair<std::int64_t, std::uint32_t>> requests;
  if (pattern == "paper") {
    // Figure 1: 2 blocks, then 3 blocks 3 apart, then 2 blocks 5 apart...
    std::int64_t off = 0;
    for (int i = 0; i < 8; ++i) {
      if (i % 2 == 0) {
        requests.emplace_back(off, 2);
        off += 3;
      } else {
        requests.emplace_back(off, 3);
        off += 5;
      }
    }
  } else if (pattern == "seq") {
    for (std::int64_t b = 0; b < 24; b += 4) requests.emplace_back(b, 4);
  } else if (pattern == "strided") {
    for (std::int64_t b = 0; b < 40; b += 8) requests.emplace_back(b, 2);
  } else if (pattern == "wild") {
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    for (int i = 0; i < 8; ++i) {
      requests.emplace_back(rng.uniform_int(0, file_blocks - 4),
                            static_cast<std::uint32_t>(rng.uniform_int(1, 4)));
    }
  } else {
    std::cerr << "unknown --pattern (paper|seq|strided|wild)\n";
    return 1;
  }

  std::cout << "access pattern:";
  for (auto [first, n] : requests) {
    std::cout << "  [" << first << ".." << first + n - 1 << "]";
  }
  std::cout << "\n\n";

  // Drive both predictors.
  ObaPredictor oba;
  IsPpmGraph graph(order);
  IsPpmPredictor ppm(graph);
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto [first, n] = requests[i];
    oba.on_request(first, n);
    ppm.on_request(first, n, ++t);
    std::cout << "after request " << i + 1 << " [" << first << ".."
              << first + n - 1 << "]:\n";
    std::cout << "  OBA would prefetch block " << *oba.predict_next() << "\n";
    if (auto p = ppm.predict_next()) {
      std::cout << "  IS_PPM:" << order << " predicts request [" << p->first_block
                << ".." << p->first_block + p->nblocks - 1 << "]\n";
    } else {
      std::cout << "  IS_PPM:" << order
                << " has no prediction yet (graph too cold)\n";
    }
  }

  std::cout << "\ngraph: " << graph.node_count() << " nodes, "
            << graph.edge_count() << " edges\n";

  // What would the aggressive version stream from here?
  std::cout << "\naggressive IS_PPM walk from the last request (file of "
            << file_blocks << " blocks):\n  ";
  GraphStream stream(ppm.walker(),
                     requests.back().first + requests.back().second,
                     file_blocks, kUnboundedBudget, 1);
  int shown = 0;
  while (auto item = stream.next()) {
    std::cout << item->block << (item->fallback ? "*" : "") << ' ';
    if (++shown >= 40) {
      std::cout << "...";
      break;
    }
  }
  std::cout << "\n  (* = OBA fallback block)\n";
  return 0;
}
