// Using the hint API: an application that knows its access pattern can
// disclose it (TIP-style informed prefetching) instead of relying on the
// on-the-fly learners.  This example builds one strided reader, runs it
// cold, with IS_PPM, and with disclosed hints, and prints the three
// latencies side by side.
//
//   ./informed_hints [--file-mb 8] [--stride 4] [--req 2]
#include <iostream>
#include <vector>

#include "driver/report.hpp"
#include "driver/simulation.hpp"
#include "trace/patterns.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lap;
  using lap::operator""_MiB;
  const Flags flags(argc, argv);

  const Bytes file_bytes =
      static_cast<Bytes>(flags.get_int("file-mb", 8)) * 1_MiB;
  const auto req = static_cast<std::uint32_t>(flags.get_int("req", 2));
  const auto stride_mult =
      static_cast<std::uint32_t>(flags.get_int("stride", 4));
  const Bytes bs = 8_KiB;
  const auto file_blocks = static_cast<std::uint32_t>(file_bytes / bs);

  // One process, one file, a strided scan with 20 ms of compute between
  // requests — the shape of a column read in a scientific code.
  Trace trace;
  trace.block_size = bs;
  trace.files = {FileInfo{FileId{0}, file_bytes}};
  ProcessTrace proc{ProcId{0}, NodeId{0}, {}};
  proc.records.push_back(TraceRecord{TraceOp::kOpen, FileId{0}, 0, 0,
                                     SimTime::zero()});
  for (const BlockRequest& r :
       strided_pattern(0, req, req * stride_mult,
                       file_blocks / (req * stride_mult))) {
    proc.records.push_back(TraceRecord{TraceOp::kRead, FileId{0},
                                       static_cast<Bytes>(r.first) * bs,
                                       static_cast<Bytes>(r.nblocks) * bs,
                                       SimTime::ms(20)});
  }
  proc.records.push_back(TraceRecord{TraceOp::kClose, FileId{0}, 0, 0,
                                     SimTime::zero()});
  trace.processes.push_back(std::move(proc));

  RunConfig cfg;
  cfg.machine = MachineConfig::pm();
  cfg.cache_per_node = 4_MiB;
  cfg.warmup_fraction = 0.0;

  std::cout << "strided scan: " << trace.total_io_ops() << " requests of "
            << req << " blocks every " << req * stride_mult
            << " blocks, 20 ms compute between requests\n\n";

  Table t({"algorithm", "avg read ms", "prefetched", "mispred"});
  for (const char* algo : {"NP", "Ln_Agr_OBA", "Ln_Agr_IS_PPM:1",
                           "Ln_Informed"}) {
    cfg.algorithm = AlgorithmSpec::parse(algo);
    const RunResult r = run_simulation(trace, cfg);
    t.add_row({algo, fmt_double(r.avg_read_ms, 3),
               std::to_string(r.prefetch_issued),
               fmt_double(r.misprediction_ratio, 2)});
  }
  t.print(std::cout);
  std::cout << "\nIS_PPM learns the stride after two requests; the hints "
               "variant never pays the warm-up or the stride-gap waste "
               "OBA does.\n";
  return 0;
}
