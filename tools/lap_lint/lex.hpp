// lap_lint's tokenizer — the single lexical view shared by the per-file
// rules (lint.cpp) and the cross-TU declaration indexer (index.cpp).
//
// One pass produces tokens with comments, string and character literals
// stripped (their contents can never violate a rule), plus the include
// directives and every comment (for lap-lint / lap-owns / lap-runs
// directives).  The lexer never throws and never loops: every state
// consumes at least one byte.
#pragma once

#include <string>
#include <vector>

namespace lap::lint {

struct Tok {
  enum Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Include {
  std::string name;  // header name without the delimiters
  bool angled;       // <...> vs "..."
  int line;
};

struct Comment {
  std::string text;
  int line;
};

/// Lexed view of one translation unit.
struct Lexed {
  std::vector<Tok> toks;
  std::vector<Include> includes;
  std::vector<Comment> comments;
};

[[nodiscard]] Lexed lex(const std::string& s);

/// Token text at `i`, or "" past the end (lets rules look around freely).
[[nodiscard]] const std::string& tok_at(const std::vector<Tok>& t,
                                        std::size_t i);

}  // namespace lap::lint
