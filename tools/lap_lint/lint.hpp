// lap-lint: the project's invariant checker.
//
// A small standalone static analyzer (own tokenizer, no libclang) that
// enforces the policies the simulator's correctness story depends on but
// that the compiler cannot see: determinism (no ambient randomness or
// wall-clock time on simulation paths, no iteration over unordered
// containers), the PR 3 container policy (flat_hash on hot paths), the
// PR 4 error taxonomy (typed TraceIoError only in src/trace/io), and
// include hygiene.  Rules are table-driven (see rule_catalog()); every
// rule can be suppressed per file with
//
//   // lap-lint: allow(<rule-id>[, <rule-id>...])
//
// and fixture files can pin the path used for directory-scoped rules with
//
//   // lap-lint: path(src/cache/whatever.cpp)
//
// Diagnostics are GCC-style — `file:line: error[rule-id]: message` — so
// editors and CI annotations pick them up unmodified.  DESIGN.md §12 has
// the full catalog and the policy for adding rules.
#pragma once

#include <string>
#include <vector>

namespace lap::lint {

struct Diagnostic {
  std::string file;  // effective path (a path() directive overrides)
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  std::vector<std::string> only;  // restrict to these rule ids; empty = all
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Every rule the analyzer knows, in reporting order.
[[nodiscard]] std::vector<RuleInfo> rule_catalog();

/// True if `id` names a known rule.
[[nodiscard]] bool is_known_rule(const std::string& id);

/// Lint one translation unit given its contents.  `path` drives the
/// directory-scoped rules unless the content carries a path() directive.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& content,
                                                  const Options& opts = {});

/// Lint a file on disk.  Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& path,
                                                const Options& opts = {});

/// Recursively lint every C++ source/header under `root`, in sorted path
/// order (deterministic output).  Throws std::runtime_error on a missing
/// root.
[[nodiscard]] std::vector<Diagnostic> lint_tree(const std::string& root,
                                                const Options& opts = {});

/// "file:line: error[rule-id]: message"
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

/// CLI entry point, shared by main() and the test suite.  Appends all
/// output (diagnostics and errors) to `out`.  Returns the process exit
/// code: 0 clean, 1 violations found, 2 usage or I/O error.
[[nodiscard]] int run_cli(const std::vector<std::string>& args,
                          std::string& out);

}  // namespace lap::lint
