// lap-lint: the project's invariant checker.
//
// A standalone static analyzer (own tokenizer, no libclang) that enforces
// the policies the simulator's correctness story depends on but that the
// compiler cannot see: determinism (no ambient randomness or wall-clock
// time on simulation paths, no iteration over unordered containers, no
// pointer values feeding orderings or hashes, no floating-point
// accumulation, no uninitialized POD members in event/mail structs), the
// PR 3 container policy (flat_hash on hot paths), the PR 4 error taxonomy
// (typed TraceIoError only in src/trace/io), include hygiene and the
// layer DAG, and — through the cross-TU declaration index (index.hpp) —
// the sharded engine's shard-confinement invariant: state owned by one
// domain is only reached from that domain's code, or across an
// Engine::post_at hop (`domain-confinement`).
//
// Rules are table-driven (see rule_catalog()); every rule can be
// suppressed for a whole file with
//
//   // lap-lint: allow(<rule-id>[, <rule-id>...])
//
// or — strongly preferred — for a single line with
//
//   // lap-lint: allow-next-line(<rule-id>[, <rule-id>...])
//
// which suppresses the listed rules on the line directly below the
// comment.  Fixture files can pin the path used for directory-scoped
// rules with
//
//   // lap-lint: path(src/cache/whatever.cpp)
//
// Diagnostics are GCC-style — `file:line: error[rule-id]: message` — so
// editors and CI annotations pick them up unmodified; --sarif additionally
// writes SARIF 2.1.0 for code-scanning upload.  DESIGN.md §12 has the
// full catalog, the ownership-annotation grammar and the baseline-file
// workflow.
#pragma once

#include <string>
#include <vector>

namespace lap::lint {

struct Diagnostic {
  std::string file;  // effective path (a path() directive overrides)
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  std::vector<std::string> only;  // restrict to these rule ids; empty = all
  int jobs = 1;                   // worker threads for per-file analysis
};

struct RuleInfo {
  std::string id;
  std::string summary;
  std::string scope;       // "tree-wide", "directory-scoped" or "cross-TU"
  bool needs_index = false;  // true when the rule runs off the declaration
                             // index (built for every invocation mode)
};

/// Every rule the analyzer knows, in reporting order.
[[nodiscard]] std::vector<RuleInfo> rule_catalog();

/// True if `id` names a known rule.
[[nodiscard]] bool is_known_rule(const std::string& id);

/// Lint one translation unit given its contents.  `path` drives the
/// directory-scoped rules unless the content carries a path() directive.
/// Index-backed rules see a single-file corpus.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& content,
                                                  const Options& opts = {});

/// Lint a file on disk.  Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& path,
                                                const Options& opts = {});

/// Recursively lint every C++ source/header under `root` as ONE corpus
/// (the declaration index spans all of it), in sorted path order
/// (deterministic output).  Throws std::runtime_error on a missing root.
[[nodiscard]] std::vector<Diagnostic> lint_tree(const std::string& root,
                                                const Options& opts = {});

/// Lint an in-memory corpus of (path, content) pairs as one unit —
/// exactly what lint_tree does after loading.  The test suite uses this
/// to seed synthetic confinement bugs into copies of real sources.
[[nodiscard]] std::vector<Diagnostic> lint_corpus(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Options& opts = {});

/// "file:line: error[rule-id]: message"
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

/// Serialize diagnostics as a SARIF 2.1.0 log (one run, one result per
/// diagnostic, rule metadata from rule_catalog()).
[[nodiscard]] std::string to_sarif(const std::vector<Diagnostic>& diags);

/// CLI entry point, shared by main() and the test suite.  Appends all
/// output (diagnostics and errors) to `out`.  Returns the process exit
/// code: 0 clean, 1 violations found, 2 usage or I/O error.
///
/// Flags: --only=r[,r...], --list-rules, --tree DIR, --jobs N,
/// --cache FILE (content-hash incremental cache), --sarif FILE,
/// --baseline FILE, --write-baseline FILE.
[[nodiscard]] int run_cli(const std::vector<std::string>& args,
                          std::string& out);

}  // namespace lap::lint
