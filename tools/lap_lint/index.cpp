#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace lap::lint {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
constexpr int kMaxNesting = 100;

const std::set<std::string>& type_keyword_set() {
  static const std::set<std::string> kTypeKeywords = {
      "const",    "mutable", "static",   "constexpr", "inline",
      "volatile", "std",     "unsigned", "signed",    "long",
      "short",    "struct",  "class",    "typename",  "enum",
      "virtual",  "explicit"};
  return kTypeKeywords;
}

[[nodiscard]] Domain parse_domain_word(const std::string& w) {
  if (w == "node") return Domain::kNode;
  if (w == "directory") return Domain::kDirectory;
  if (w == "disk") return Domain::kDisk;
  if (w == "engine") return Domain::kEngine;
  if (w == "value") return Domain::kValue;
  if (w == "any") return Domain::kAny;
  return Domain::kUnknown;
}

/// Extract "lap-owns:"/"lap-runs:" annotations from the comments into
/// line → domain maps.  The annotated word is the first token after the
/// colon.
void collect_annotations(const Lexed& lx, std::map<int, Domain>& owns,
                         std::map<int, Domain>& runs,
                         std::vector<ParseDiag>& diags,
                         const std::string& path) {
  for (const Comment& c : lx.comments) {
    for (const char* key : {"lap-owns:", "lap-runs:"}) {
      std::size_t at = c.text.find(key);
      if (at == std::string::npos) continue;
      std::size_t p = at + std::char_traits<char>::length(key);
      while (p < c.text.size() &&
             std::isspace(static_cast<unsigned char>(c.text[p])) != 0) {
        ++p;
      }
      std::size_t e = p;
      while (e < c.text.size() &&
             (std::isalnum(static_cast<unsigned char>(c.text[e])) != 0 ||
              c.text[e] == '_')) {
        ++e;
      }
      const std::string word = c.text.substr(p, e - p);
      const Domain d = parse_domain_word(word);
      const bool is_owns = key[4] == 'o';
      if (d == Domain::kUnknown || (is_owns && d == Domain::kAny) ||
          (!is_owns && (d == Domain::kValue || d == Domain::kEngine))) {
        diags.push_back({path, c.line,
                         std::string("bad ") + (is_owns ? "lap-owns" : "lap-runs") +
                             " annotation '" + word + "' (expected " +
                             (is_owns ? "node|directory|disk|engine|value"
                                      : "node|directory|disk|any") +
                             ")"});
        continue;
      }
      (is_owns ? owns : runs)[c.line] = d;
    }
  }
}

/// Per-file parse state shared by the recursive scope walker.
struct FileParse {
  Index* idx = nullptr;
  std::size_t file_idx = 0;
  const std::vector<Tok>* toks = nullptr;
  std::string path;
  std::map<int, Domain> owns_at;
  std::map<int, Domain> runs_at;
  std::set<int> token_lines;        // lines that carry at least one token
  std::vector<std::size_t> close_of;  // '{' index → matching '}' index
  std::vector<ParseDiag>* diags = nullptr;
  bool gave_up = false;
};

/// Annotation for a declaration whose first token is on `first_line` and
/// which extends through `last_line`.  Same-line annotations always
/// apply; lines above apply only when they are comment-only (so a
/// trailing annotation on the previous member never bleeds downward).
[[nodiscard]] Domain ann_near(const FileParse& fp,
                              const std::map<int, Domain>& table,
                              int first_line, int last_line) {
  for (int ln = first_line; ln <= last_line; ++ln) {
    auto it = table.find(ln);
    if (it != table.end()) return it->second;
  }
  for (int ln = first_line - 1; ln >= first_line - 2 && ln >= 1; --ln) {
    if (fp.token_lines.count(ln) != 0) break;  // code line: stop looking up
    auto it = table.find(ln);
    if (it != table.end()) return it->second;
  }
  return Domain::kUnknown;
}

/// Brace matching over the whole token stream.  Fills fp.close_of; any
/// imbalance produces a typed diagnostic and leaves the unmatched braces
/// with kNpos (the walker treats that as end-of-scope, never looping).
void match_braces(FileParse& fp) {
  const auto& t = *fp.toks;
  fp.close_of.assign(t.size(), kNpos);
  std::vector<std::size_t> stack;
  bool reported_extra = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    if (t[i].text == "{") {
      stack.push_back(i);
    } else if (t[i].text == "}") {
      if (stack.empty()) {
        if (!reported_extra) {
          fp.diags->push_back(
              {fp.path, t[i].line, "unmatched '}' — declarations before this "
                                   "point may be mis-indexed"});
          reported_extra = true;
        }
        continue;
      }
      fp.close_of[stack.back()] = i;
      stack.pop_back();
    }
  }
  if (!stack.empty()) {
    fp.diags->push_back({fp.path, t[stack.front()].line,
                         "unbalanced '{' (truncated or macro-mangled "
                         "declaration); indexing stops at the open brace"});
  }
}

/// First index in [b, e) whose token text is `what` at top level (angle,
/// paren and brace groups skipped).  Returns kNpos if absent.
[[nodiscard]] std::size_t find_top_level(const FileParse& fp, std::size_t b,
                                         std::size_t e,
                                         const std::string& what) {
  const auto& t = *fp.toks;
  int angle = 0;
  int paren = 0;
  for (std::size_t i = b; i < e; ++i) {
    const std::string& x = t[i].text;
    if (angle == 0 && paren == 0 && x == what) return i;
    if (x == "<") ++angle;
    if (x == ">" && angle > 0) --angle;
    if (x == "(") ++paren;
    if (x == ")" && paren > 0) --paren;
    if (x == "{") {
      const std::size_t c = fp.close_of[i];
      if (c == kNpos || c >= e) return kNpos;
      i = c;
    }
  }
  return kNpos;
}

[[nodiscard]] bool is_keywordish(const std::string& s) {
  return type_keyword_set().count(s) != 0 || s == "void" || s == "bool" ||
         s == "int" || s == "char" || s == "float" || s == "double" ||
         s == "auto" || s == "operator" || s == "return" || s == "using" ||
         s == "template" || s == "decltype" || s == "noexcept" ||
         s == "sizeof" || s == "if" || s == "for" || s == "while" ||
         s == "switch" || s == "catch";
}

/// Parse one class-scope statement [b, e) (exclusive of the ';') into the
/// class at `cls_idx`: either a method declaration or a data member.
void parse_member(FileParse& fp, std::size_t b, std::size_t e,
                  std::size_t cls_idx) {
  const auto& t = *fp.toks;
  // Strip access specifiers, attributes and template heads.
  while (b < e) {
    const std::string& x = t[b].text;
    if ((x == "public" || x == "private" || x == "protected") && b + 1 < e &&
        t[b + 1].text == ":") {
      b += 2;
    } else if (x == "[[") {
      while (b < e && t[b].text != "]]") ++b;
      if (b < e) ++b;
    } else if (x == "template" && b + 1 < e && t[b + 1].text == "<") {
      int depth = 0;
      std::size_t j = b + 1;
      for (; j < e; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) break;
      }
      if (j >= e) return;  // malformed template head; skip the statement
      b = j + 1;
    } else {
      break;
    }
  }
  if (b >= e) return;
  const std::string& lead = t[b].text;
  if (lead == "using" || lead == "friend" || lead == "typedef" ||
      lead == "static_assert" || lead == "enum" || lead == "operator" ||
      lead == "~") {
    return;
  }
  const bool is_static = lead == "static" || lead == "constexpr";

  ClassDecl& cls = fp.idx->classes[cls_idx];
  const std::size_t eq = find_top_level(fp, b, e, "=");
  const std::size_t paren = find_top_level(fp, b, e, "(");
  if (paren != kNpos && (eq == kNpos || paren < eq)) {
    // Method declaration: name is the identifier before the '('.
    if (paren == b) return;
    const Tok& nm = t[paren - 1];
    if (nm.kind != Tok::kIdent || is_keywordish(nm.text)) return;
    if (paren >= b + 2 && t[paren - 2].text == "operator") return;
    const Domain runs = ann_near(fp, fp.runs_at, t[b].line, t[e - 1].line);
    cls.methods.push_back({nm.text, nm.line, runs});
    return;
  }
  if (is_static) return;  // static data members are not instance state

  // Field: name is the identifier before the first top-level '=', '{',
  // ':' (bitfield), or failing those, the last identifier.
  std::size_t stop = e;
  for (const char* delim : {"=", "{", ":"}) {
    const std::size_t at = find_top_level(fp, b, e, delim);
    if (at != kNpos && at < stop) stop = at;
  }
  if (stop == b) return;
  const Tok& nm = t[stop - 1];
  if (nm.kind != Tok::kIdent || is_keywordish(nm.text)) return;

  FieldDecl f;
  f.name = nm.text;
  f.line = nm.line;
  f.annotated = ann_near(fp, fp.owns_at, t[b].line, t[e - 1].line);
  f.has_init = stop < e && t[stop].text != ":";  // bitfields are not inits
  static const std::set<std::string> kScalar = {
      "int",      "char",     "bool",     "float",    "double",
      "unsigned", "signed",   "long",     "short",    "size_t",
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "int8_t",
      "int16_t",  "int32_t",  "int64_t",  "uintptr_t", "intptr_t"};
  const std::string& ty = stop >= b + 2 ? t[stop - 2].text : nm.text;
  f.scalar = stop >= b + 2 && (ty == "*" || kScalar.count(ty) != 0);
  for (std::size_t i = b; i < stop; ++i) {
    if (t[i].text == "const") f.is_const = true;
  }
  for (std::size_t i = b; i + 1 < stop; ++i) {
    if (t[i].kind == Tok::kIdent && type_keyword_set().count(t[i].text) == 0) {
      f.type_idents.push_back(t[i].text);
    }
  }
  cls.fields.push_back(std::move(f));
}

void parse_scope(FileParse& fp, std::size_t b, std::size_t e,
                 std::size_t cls_idx, int depth);

/// Handle a function-definition statement whose head is [head_b, open)
/// and whose first brace sits at `open`.  Returns the index to resume
/// scanning from (one past the body's closing brace), or kNpos on
/// give-up.
[[nodiscard]] std::size_t parse_function(FileParse& fp, std::size_t head_b,
                                         std::size_t open, std::size_t scope_end,
                                         std::size_t cls_idx) {
  const auto& t = *fp.toks;
  const std::size_t paren = find_top_level(fp, head_b, open, "(");
  if (paren == kNpos || paren == head_b) {
    // Opaque braces (enum body, aggregate initializer): skip the group.
    const std::size_t c = fp.close_of[open];
    return c == kNpos || c >= scope_end ? kNpos : c + 1;
  }
  std::string name;
  std::string cls;
  bool is_ctor = false;
  std::size_t p = paren;
  if (p > head_b && t[p - 1].kind == Tok::kIdent &&
      !is_keywordish(t[p - 1].text)) {
    name = t[p - 1].text;
    --p;
  }
  if (p > head_b && t[p - 1].text == "~") {
    is_ctor = true;  // destructor: exempt like a constructor
    --p;
  }
  if (p > head_b + 1 && t[p - 1].text == "::" &&
      t[p - 2].kind == Tok::kIdent) {
    cls = t[p - 2].text;
  }
  if (name.empty() || (p > head_b && t[p - 1].text == "operator")) {
    // Operator definitions and unparsable heads: consume the body blindly.
    const std::size_t c = fp.close_of[open];
    return c == kNpos || c >= scope_end ? kNpos : c + 1;
  }
  if (cls.empty() && cls_idx != kNpos) cls = fp.idx->classes[cls_idx].name;
  if (!cls.empty() && name == cls) is_ctor = true;

  // Constructors may interleave brace-init items before the body; walk
  // the groups until one is followed by neither ',' nor '{'.
  std::size_t body = open;
  if (is_ctor) {
    for (;;) {
      const std::size_t c = fp.close_of[body];
      if (c == kNpos || c >= scope_end) return kNpos;
      const std::string nxt =
          c + 1 < scope_end ? t[c + 1].text : std::string(";");
      if (nxt == ",") {
        std::size_t j = c + 2;
        while (j < scope_end && t[j].text != "{") ++j;
        if (j >= scope_end) return kNpos;
        body = j;
        continue;
      }
      if (nxt == "{") {
        body = c + 1;
        continue;
      }
      break;
    }
  }
  const std::size_t close = fp.close_of[body];
  if (close == kNpos || close >= scope_end) return kNpos;

  FuncDef fd;
  fd.cls = cls;
  fd.name = name;
  fd.file = fp.path;
  fd.line = t[paren - 1].line;
  fd.file_idx = fp.file_idx;
  fd.body_begin = body;
  fd.body_end = close + 1;
  fd.is_ctor = is_ctor;
  fd.runs = ann_near(fp, fp.runs_at, t[head_b].line, t[body].line);
  fp.idx->funcs.push_back(fd);
  if (cls_idx != kNpos) {
    fp.idx->classes[cls_idx].methods.push_back({name, fd.line, fd.runs});
  }
  return close + 1;
}

/// Try to read a class/struct head out of [b, open).  Returns the index
/// of the class keyword, or kNpos if the statement is not a class
/// definition head.
[[nodiscard]] std::size_t find_class_keyword(const FileParse& fp,
                                             std::size_t b, std::size_t open) {
  const auto& t = *fp.toks;
  int angle = 0;
  int paren = 0;
  for (std::size_t i = b; i < open; ++i) {
    const std::string& x = t[i].text;
    if (x == "<") ++angle;
    if (x == ">" && angle > 0) --angle;
    if (x == "(") ++paren;
    if (x == ")" && paren > 0) --paren;
    if (angle != 0 || paren != 0) continue;
    if ((x == "class" || x == "struct") &&
        (i == b || t[i - 1].text != "enum")) {
      // Require an identifier or an anonymous body right after (skipping
      // attributes); `typename`-like uses inside templates are excluded
      // by the angle-depth guard above.
      return i;
    }
    if (x == "=") return kNpos;  // alias or initializer, not a definition
  }
  return kNpos;
}

void parse_scope(FileParse& fp, std::size_t b, std::size_t e,
                 std::size_t cls_idx, int depth) {
  if (fp.gave_up) return;
  if (depth > kMaxNesting) {
    const auto& t = *fp.toks;
    fp.diags->push_back({fp.path, b < t.size() ? t[b].line : 0,
                         "nesting deeper than 100 scopes; giving up on the "
                         "rest of this file"});
    fp.gave_up = true;
    return;
  }
  const auto& t = *fp.toks;
  std::size_t stmt = b;
  std::size_t i = b;
  while (i < e && !fp.gave_up) {
    const std::string& x = t[i].text;
    if (t[i].kind == Tok::kPunct && x == ";") {
      if (cls_idx != kNpos && i > stmt) parse_member(fp, stmt, i, cls_idx);
      stmt = ++i;
      continue;
    }
    if (t[i].kind == Tok::kPunct && x == "{") {
      const std::size_t close = fp.close_of[i];
      if (close == kNpos || close >= e) return;  // diag already recorded
      // Namespace?
      bool is_namespace = false;
      for (std::size_t j = stmt; j < i; ++j) {
        if (t[j].text == "namespace") is_namespace = true;
        if (t[j].text == "(") is_namespace = false;
      }
      if (is_namespace) {
        parse_scope(fp, i + 1, close, kNpos, depth + 1);
        stmt = i = close + 1;
        continue;
      }
      const std::size_t kw = find_class_keyword(fp, stmt, i);
      if (kw != kNpos) {
        // Class/struct definition.
        std::size_t nm = kw + 1;
        while (nm < i && t[nm].text == "[[") {
          while (nm < i && t[nm].text != "]]") ++nm;
          if (nm < i) ++nm;
        }
        while (nm < i && t[nm].text == "alignas") {
          ++nm;
          if (nm < i && t[nm].text == "(") {
            int pd = 0;
            for (; nm < i; ++nm) {
              if (t[nm].text == "(") ++pd;
              if (t[nm].text == ")" && --pd == 0) {
                ++nm;
                break;
              }
            }
          }
        }
        ClassDecl cd;
        if (nm < i && t[nm].kind == Tok::kIdent &&
            !is_keywordish(t[nm].text) && t[nm].text != "final") {
          cd.name = t[nm].text;
          // Out-of-class nested definition `struct A::B { ... }`: the
          // declared name is the one after the last '::'.
          while (nm + 2 < i && t[nm + 1].text == "::" &&
                 t[nm + 2].kind == Tok::kIdent) {
            nm += 2;
            cd.name = t[nm].text;
          }
        }
        cd.file = fp.path;
        cd.line = t[kw].line;
        cd.annotated = ann_near(fp, fp.owns_at, t[stmt].line, t[i].line);
        fp.idx->classes.push_back(cd);
        const std::size_t new_idx = fp.idx->classes.size() - 1;
        if (!cd.name.empty()) {
          auto [it, fresh] =
              fp.idx->class_by_name.emplace(cd.name, new_idx);
          if (!fresh) fp.idx->ambiguous_classes.push_back(cd.name);
        }
        parse_scope(fp, i + 1, close, new_idx, depth + 1);
        stmt = i = close + 1;  // any trailing declarator parses as its own stmt
        continue;
      }
      if (cls_idx != kNpos) {
        // Distinguish a member with a braced initializer (`FileId f{};`,
        // `std::function<...> g = [] { ... };`) from an inline method
        // body: a member head either carries a top-level `=` or has no
        // parameter list at all.
        bool has_eq = false;
        bool has_paren = false;
        int pd = 0;
        for (std::size_t j = stmt; j < i; ++j) {
          const std::string& y = t[j].text;
          if (y == "(") {
            ++pd;
            has_paren = true;
          } else if (y == ")") {
            --pd;
          } else if (y == "=" && pd == 0) {
            has_eq = true;
          }
        }
        if (has_eq || !has_paren) {
          const std::size_t before = fp.idx->classes[cls_idx].fields.size();
          parse_member(fp, stmt, i, cls_idx);
          auto& fields = fp.idx->classes[cls_idx].fields;
          if (fields.size() > before) fields.back().has_init = true;
          i = close + 1;
          if (i < e && t[i].text == ";") ++i;
          stmt = i;
          continue;
        }
      }
      const std::size_t resume = parse_function(fp, stmt, i, e, cls_idx);
      if (resume == kNpos) return;
      stmt = i = resume;
      continue;
    }
    ++i;
  }
}

[[nodiscard]] std::string src_rel(const std::string& path) {
  std::size_t at = std::string::npos;
  if (path.compare(0, 4, "src/") == 0) at = 0;
  const std::size_t found = path.rfind("/src/");
  if (found != std::string::npos) at = found + 1;
  return at == std::string::npos ? std::string() : path.substr(at + 4);
}

[[nodiscard]] std::string top_dir(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

// --- confinement walk ------------------------------------------------------

/// Result of scanning one function body without a committed current
/// domain: which concrete domains its straight-line code touches and
/// which bare functions it calls (for the requirement fixpoint).
struct BodyFacts {
  std::set<Domain> touched;
  std::set<std::string> callees;
  bool has_hop_or_post = false;
};

struct Walker {
  const Index* idx = nullptr;
  const FuncDef* fn = nullptr;
  const std::vector<Tok>* toks = nullptr;
  std::vector<std::size_t> close_of;  // rebuilt per file, shared by caller
  std::vector<ParseDiag>* out = nullptr;  // null → facts-only scan
  BodyFacts* facts = nullptr;
  const ClassDecl* enclosing = nullptr;  // resolved class of fn->cls
};

[[nodiscard]] Domain domain_of_expr(const std::vector<Tok>& t, std::size_t b,
                                    std::size_t e) {
  for (std::size_t i = b; i < e; ++i) {
    const std::string& x = t[i].text;
    if (x == "kDirDomain") return Domain::kDirectory;
    if (x == "node_domain") return Domain::kNode;
    if (x == "disk_domain") return Domain::kDisk;
    if (x == "DomainId" && i + 2 < e &&
        (t[i + 1].text == "{" || t[i + 1].text == "(") &&
        t[i + 2].text == "0") {
      return Domain::kDirectory;
    }
  }
  return Domain::kUnknown;
}

[[nodiscard]] Domain field_owner_in(const ClassDecl* cls,
                                    const std::string& name) {
  if (cls == nullptr) return Domain::kUnknown;
  for (const FieldDecl& f : cls->fields) {
    if (f.name == name) return f.owner;
  }
  return Domain::kUnknown;
}

void note_access(const Walker& w, Domain owner, Domain cur, int line,
                 const std::string& what) {
  if (!is_concrete(owner)) return;
  if (w.facts != nullptr && !is_concrete(cur)) w.facts->touched.insert(owner);
  if (w.out == nullptr || !is_concrete(cur) || owner == cur) return;
  w.out->push_back(
      {w.fn->file, line,
       "'" + what + "' is owned by the " + domain_name(owner) +
           " domain but reached from " + domain_name(cur) +
           "-domain code; route the access through Engine::post_at"});
}

/// Find the '{' opening the body of a lambda whose '[' sits at `lb`.
/// Returns kNpos when the capture list does not look like a lambda.
[[nodiscard]] std::size_t lambda_body(const Walker& w, std::size_t lb,
                                      std::size_t e) {
  const auto& t = *w.toks;
  std::size_t i = lb + 1;
  int depth = 1;
  while (i < e && depth > 0) {
    if (t[i].text == "[") ++depth;
    if (t[i].text == "]") --depth;
    ++i;
  }
  if (depth != 0) return kNpos;
  // Optional (params), specifiers, -> ret; then the body brace.
  if (i < e && t[i].text == "(") {
    int pd = 0;
    for (; i < e; ++i) {
      if (t[i].text == "(") ++pd;
      if (t[i].text == ")" && --pd == 0) {
        ++i;
        break;
      }
    }
  }
  while (i < e && t[i].text != "{" && t[i].text != ";" && t[i].text != ")") ++i;
  return i < e && t[i].text == "{" ? i : kNpos;
}

void walk(const Walker& w, std::size_t b, std::size_t e, Domain cur);

/// Handle `post_at(target, ..., lambda...)` starting with the '(' at
/// `open`.  Lambdas inside run under the posted target domain; all other
/// argument tokens evaluate at the posting site.  Returns one past the
/// call's closing ')'.
[[nodiscard]] std::size_t walk_post_at(const Walker& w, std::size_t open,
                                       std::size_t e, Domain cur) {
  const auto& t = *w.toks;
  if (w.facts != nullptr) w.facts->has_hop_or_post = true;
  // First argument extent.
  std::size_t arg_b = open + 1;
  std::size_t i = arg_b;
  int pd = 1;
  std::size_t arg_e = kNpos;
  std::size_t close = e;
  for (; i < e; ++i) {
    const std::string& x = t[i].text;
    if (x == "(") ++pd;
    if (x == ")" && --pd == 0) {
      close = i;
      break;
    }
    if (x == "," && pd == 1 && arg_e == kNpos) arg_e = i;
  }
  if (arg_e == kNpos) arg_e = close;
  const Domain target = domain_of_expr(t, arg_b, arg_e);

  for (std::size_t j = arg_b; j < close;) {
    if (t[j].text == "[" && j > arg_b &&
        (t[j - 1].text == "," || t[j - 1].text == "(")) {
      const std::size_t body = lambda_body(w, j, close);
      if (body != kNpos && body < w.close_of.size() &&
          w.close_of[body] != kNpos && w.close_of[body] <= close) {
        walk(w, body + 1, w.close_of[body], target);
        j = w.close_of[body] + 1;
        continue;
      }
    }
    // Re-dispatch single tokens through the main walk one step at a time
    // is wasteful; instead handle the few interesting shapes inline.
    walk(w, j, j + 1, cur);
    ++j;
  }
  return close == e ? e : close + 1;
}

void walk(const Walker& w, std::size_t b, std::size_t e, Domain cur) {
  const auto& t = *w.toks;
  for (std::size_t i = b; i < e;) {
    const Tok& tk = t[i];
    if (tk.kind != Tok::kIdent) {
      ++i;
      continue;
    }
    const std::string& x = tk.text;
    const std::string& nxt = tok_at(t, i + 1);
    const std::string& prev = tok_at(t, i == 0 ? t.size() : i - 1);

    if (x == "hop_to" && nxt == "(") {
      if (w.facts != nullptr) w.facts->has_hop_or_post = true;
      // The hop commits this coroutine to the target domain from here on.
      std::size_t j = i + 2;
      int pd = 1;
      std::size_t arg_e = e;
      for (; j < e; ++j) {
        if (t[j].text == "(") ++pd;
        if (t[j].text == ")" && --pd == 0) break;
        if (t[j].text == "," && pd == 1 && arg_e == e) arg_e = j;
      }
      cur = domain_of_expr(t, i + 2, arg_e);
      i += 2;
      continue;
    }
    if (x == "post_at" && nxt == "(") {
      i = walk_post_at(w, i + 1, e, cur);
      continue;
    }
    if (prev == "." || prev == "->") {
      if (nxt != "(") {
        // Field access through a receiver: resolve by unique global name.
        const bool via_this = i >= 2 && t[i - 2].text == "this";
        Domain owner = Domain::kUnknown;
        if (via_this) {
          owner = field_owner_in(w.enclosing, x);
        } else {
          auto it = w.idx->field_owner.find(x);
          if (it != w.idx->field_owner.end()) owner = it->second;
        }
        note_access(w, owner, cur, tk.line, x);
      }
      ++i;
      continue;
    }
    if (nxt == "(" && prev != "::") {
      // Bare call: check the callee's required run-domain.
      auto it = w.idx->func_requires.find(x);
      if (it != w.idx->func_requires.end()) {
        if (w.facts != nullptr && !is_concrete(cur)) {
          w.facts->callees.insert(x);
        }
        if (w.out != nullptr && is_concrete(cur) && is_concrete(it->second) &&
            it->second != cur) {
          w.out->push_back(
              {w.fn->file, tk.line,
               "call to '" + x + "' (runs on the " + domain_name(it->second) +
                   " domain) from " + domain_name(cur) +
                   "-domain code; route it through Engine::post_at"});
        }
      } else if (w.facts != nullptr && !is_concrete(cur)) {
        w.facts->callees.insert(x);
      }
      ++i;
      continue;
    }
    // Bare identifier: a member of the enclosing class?
    if (prev != "::" && prev != "." && prev != "->") {
      const Domain owner = field_owner_in(w.enclosing, x);
      note_access(w, owner, cur, tk.line, x);
    }
    ++i;
  }
}

[[nodiscard]] Domain start_domain(const FuncDef& fd, const ClassDecl* cls) {
  if (is_concrete(fd.runs)) return fd.runs;
  if (fd.runs == Domain::kAny) return Domain::kUnknown;
  if (cls != nullptr && is_concrete(cls->owner)) return cls->owner;
  return Domain::kUnknown;
}

[[nodiscard]] const ClassDecl* class_of(const Index& idx,
                                        const std::string& name) {
  if (name.empty()) return nullptr;
  auto it = idx.class_by_name.find(name);
  if (it == idx.class_by_name.end()) return nullptr;
  if (std::find(idx.ambiguous_classes.begin(), idx.ambiguous_classes.end(),
                name) != idx.ambiguous_classes.end()) {
    return nullptr;
  }
  return &idx.classes[it->second];
}

}  // namespace

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::kValue: return "value";
    case Domain::kEngine: return "engine";
    case Domain::kNode: return "node";
    case Domain::kDirectory: return "directory";
    case Domain::kDisk: return "disk";
    case Domain::kAny: return "any";
    case Domain::kUnknown: break;
  }
  return "unknown";
}

Domain dir_default_owner(const std::string& rel) {
  const std::string d = top_dir(rel);
  if (d == "util" || d == "obs" || d == "trace" || d == "net" ||
      d == "disk" || d == "check") {
    return Domain::kValue;
  }
  if (d == "sim" || d == "driver") return Domain::kEngine;
  if (d == "cache" || d == "core") return Domain::kNode;
  if (d == "fs") return Domain::kDirectory;
  return Domain::kUnknown;
}

void index_file(Index& idx, IndexedFile file, std::vector<ParseDiag>& diags) {
  file.rel = src_rel(file.path);
  idx.files.push_back(std::move(file));
  const IndexedFile& f = idx.files.back();

  FileParse fp;
  fp.idx = &idx;
  fp.file_idx = idx.files.size() - 1;
  fp.toks = &f.lx->toks;
  fp.path = f.path;
  fp.diags = &diags;
  collect_annotations(*f.lx, fp.owns_at, fp.runs_at, diags, f.path);
  for (const Tok& tk : f.lx->toks) fp.token_lines.insert(tk.line);
  match_braces(fp);
  parse_scope(fp, 0, f.lx->toks.size(), kNpos, 0);
}

void resolve_owners(Index& idx, std::vector<ParseDiag>& diags) {
  (void)diags;
  // Class owners: explicit annotation, else the directory default.
  for (ClassDecl& c : idx.classes) {
    c.owner = c.annotated != Domain::kUnknown
                  ? c.annotated
                  : dir_default_owner(src_rel(c.file));
  }
  // Field owners.
  for (ClassDecl& c : idx.classes) {
    for (FieldDecl& f : c.fields) {
      if (f.annotated != Domain::kUnknown) {
        f.owner = f.annotated;
        continue;
      }
      Domain by_type = Domain::kUnknown;
      bool explicit_type = false;
      for (const std::string& ti : f.type_idents) {
        const ClassDecl* tc = class_of(idx, ti);
        if (tc == nullptr) continue;
        if (tc->annotated != Domain::kUnknown) {
          by_type = tc->annotated;
          explicit_type = true;
          break;
        }
        // Inferred type owners propagate except for the generic util/
        // containers, whose instances belong to whoever holds them.
        if (top_dir(src_rel(tc->file)) == "util") continue;
        if (by_type == Domain::kUnknown && tc->owner != Domain::kUnknown) {
          by_type = tc->owner;
        }
      }
      if (explicit_type || by_type != Domain::kUnknown) {
        f.owner = by_type;
      } else {
        f.owner = c.owner == Domain::kEngine ? Domain::kValue : c.owner;
      }
    }
  }
  // Global field table with ambiguity drop.
  std::map<std::string, Domain> merged;
  std::set<std::string> dropped;
  for (const ClassDecl& c : idx.classes) {
    for (const FieldDecl& f : c.fields) {
      auto [it, fresh] = merged.emplace(f.name, f.owner);
      if (!fresh && it->second != f.owner) dropped.insert(f.name);
    }
  }
  for (const std::string& name : dropped) merged[name] = Domain::kUnknown;
  idx.field_owner = std::move(merged);

  // Adopt lap-runs annotations written on the in-class declaration for
  // out-of-line definitions (the usual place to annotate is the header).
  for (FuncDef& fd : idx.funcs) {
    if (fd.runs != Domain::kUnknown || fd.cls.empty()) continue;
    const ClassDecl* cls = class_of(idx, fd.cls);
    if (cls == nullptr) continue;
    for (const MethodDecl& m : cls->methods) {
      if (m.name == fd.name && m.runs != Domain::kUnknown) {
        fd.runs = m.runs;
        break;
      }
    }
  }

  // Requirement fixpoint for bare calls.  Seed: explicitly-annotated
  // concrete run-domains, and bodies that touch exactly one concrete
  // domain without hopping.  Iterate until stable (bounded).
  std::vector<BodyFacts> facts(idx.funcs.size());
  for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
    const FuncDef& fd = idx.funcs[i];
    if (fd.is_ctor) continue;
    Walker w;
    w.idx = &idx;
    w.fn = &fd;
    w.toks = &idx.files[fd.file_idx].lx->toks;
    {
      // Cheap local brace match restricted to the body range.
      w.close_of.assign(w.toks->size(), kNpos);
      std::vector<std::size_t> stack;
      for (std::size_t j = fd.body_begin; j < fd.body_end; ++j) {
        const std::string& x = (*w.toks)[j].text;
        if (x == "{") stack.push_back(j);
        if (x == "}" && !stack.empty()) {
          w.close_of[stack.back()] = j;
          stack.pop_back();
        }
      }
    }
    w.facts = &facts[i];
    w.enclosing = class_of(idx, fd.cls);
    walk(w, fd.body_begin + 1, fd.body_end - 1, Domain::kUnknown);
  }

  std::map<std::string, Domain> req;
  std::map<std::string, bool> conflict;
  const auto merge_req = [&](const std::string& name, Domain d) {
    auto [it, fresh] = req.emplace(name, d);
    if (!fresh && it->second != d) conflict[name] = true;
  };
  for (std::size_t pass = 0; pass < 12; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
      const FuncDef& fd = idx.funcs[i];
      if (fd.is_ctor || fd.runs == Domain::kAny) continue;
      Domain want = Domain::kUnknown;
      if (is_concrete(fd.runs)) {
        want = fd.runs;
      } else if (!facts[i].has_hop_or_post) {
        const ClassDecl* cls = class_of(idx, fd.cls);
        if (cls != nullptr && is_concrete(cls->owner)) {
          want = cls->owner;
        } else {
          std::set<Domain> need = facts[i].touched;
          for (const std::string& callee : facts[i].callees) {
            auto it = req.find(callee);
            if (it != req.end() && !conflict.count(callee)) {
              need.insert(it->second);
            }
          }
          if (need.size() == 1 && is_concrete(*need.begin())) {
            want = *need.begin();
          }
        }
      }
      if (want == Domain::kUnknown) continue;
      const auto before = req.find(fd.name);
      const bool had = before != req.end();
      merge_req(fd.name, want);
      if (!had) changed = true;
    }
    if (!changed) break;
  }
  idx.func_requires.clear();
  for (const auto& [name, d] : req) {
    if (conflict.count(name) == 0 && is_concrete(d)) {
      idx.func_requires.emplace(name, d);
    }
  }
}

void check_confinement(const Index& idx, std::vector<ParseDiag>& out) {
  for (const FuncDef& fd : idx.funcs) {
    if (fd.is_ctor) continue;
    if (src_rel(fd.file).empty()) continue;  // outside src/: not checked
    Walker w;
    w.idx = &idx;
    w.fn = &fd;
    w.toks = &idx.files[fd.file_idx].lx->toks;
    w.close_of.assign(w.toks->size(), kNpos);
    std::vector<std::size_t> stack;
    for (std::size_t j = fd.body_begin; j < fd.body_end; ++j) {
      const std::string& x = (*w.toks)[j].text;
      if (x == "{") stack.push_back(j);
      if (x == "}" && !stack.empty()) {
        w.close_of[stack.back()] = j;
        stack.pop_back();
      }
    }
    w.out = &out;
    w.enclosing = class_of(idx, fd.cls);
    walk(w, fd.body_begin + 1, fd.body_end - 1,
         start_domain(fd, w.enclosing));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ParseDiag& a, const ParseDiag& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
}

}  // namespace lap::lint
