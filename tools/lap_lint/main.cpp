// lap_lint CLI — see lint.hpp for the rule catalog and DESIGN.md §12 for
// the policy.  All logic lives in the library so the test suite can drive
// the exact CLI surface in-process.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  const int rc = lap::lint::run_cli(args, out);
  std::fputs(out.c_str(), rc == 0 || rc == 1 ? stdout : stderr);
  return rc;
}
