#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lap::lint {
namespace {

// --- tokenizer ------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Include {
  std::string name;  // header name without the delimiters
  bool angled;       // <...> vs "..."
  int line;
};

struct Comment {
  std::string text;
  int line;
};

/// Lexed view of one translation unit: tokens with comments, string and
/// character literals stripped (their contents can never violate a rule),
/// plus the include directives and every comment (for lap-lint
/// directives).
struct Lexed {
  std::vector<Tok> toks;
  std::vector<Include> includes;
  std::vector<Comment> comments;
};

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Consume a raw string literal starting at the opening quote of
/// R"delim( ... )delim".  Returns the index one past the closing quote.
[[nodiscard]] std::size_t skip_raw_string(const std::string& s, std::size_t i,
                                          int& line) {
  // s[i] == '"'; collect the delimiter up to '('.
  std::size_t j = i + 1;
  std::string delim;
  while (j < s.size() && s[j] != '(') delim += s[j++];
  const std::string closer = ")" + delim + "\"";
  std::size_t end = s.find(closer, j);
  if (end == std::string::npos) return s.size();
  for (std::size_t k = i; k < end + closer.size(); ++k) {
    if (s[k] == '\n') ++line;
  }
  return end + closer.size();
}

[[nodiscard]] Lexed lex(const std::string& s) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  bool line_start = true;  // nothing but whitespace since the last newline

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t j = s.find('\n', i);
      if (j == std::string::npos) j = n;
      out.comments.push_back({s.substr(i + 2, j - i - 2), line});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = s.find("*/", i + 2);
      if (j == std::string::npos) j = n;
      out.comments.push_back({s.substr(i + 2, j - i - 2), start_line});
      for (std::size_t k = i; k < std::min(j + 2, n); ++k) {
        if (s[k] == '\n') ++line;
      }
      i = std::min(j + 2, n);
      continue;
    }
    // Preprocessor directive: consume the logical line, record includes.
    if (c == '#' && line_start) {
      std::size_t j = i;
      std::string dir;
      while (j < n) {
        if (s[j] == '\\' && j + 1 < n && s[j + 1] == '\n') {
          ++line;
          j += 2;
          continue;
        }
        if (s[j] == '\n') break;
        dir += s[j++];
      }
      std::size_t p = dir.find_first_not_of(" \t", 1);
      if (p != std::string::npos && dir.compare(p, 7, "include") == 0) {
        std::size_t q = dir.find_first_not_of(" \t", p + 7);
        if (q != std::string::npos && (dir[q] == '<' || dir[q] == '"')) {
          const char close = dir[q] == '<' ? '>' : '"';
          std::size_t e = dir.find(close, q + 1);
          if (e != std::string::npos) {
            out.includes.push_back(
                {dir.substr(q + 1, e - q - 1), dir[q] == '<', line});
          }
        }
      }
      i = j;
      line_start = false;
      continue;
    }
    line_start = false;
    // String / char literals (contents stripped).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && s[j] != c) {
        if (s[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        if (s[j] == '\n') ++line;
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifiers (raw-string prefixes included: R"( …)").
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(s[j])) ++j;
      std::string id = s.substr(i, j - i);
      if (j < n && s[j] == '"' &&
          (id == "R" || id == "LR" || id == "uR" || id == "UR" ||
           id == "u8R")) {
        i = skip_raw_string(s, j, line);
        continue;
      }
      out.toks.push_back({Tok::kIdent, std::move(id), line});
      i = j;
      continue;
    }
    // Numbers (incl. hex, suffixes, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(s[j]) || s[j] == '\'' || s[j] == '.')) ++j;
      out.toks.push_back({Tok::kNumber, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: '::', '[[' and ']]' matter to the rules; everything
    // else is a single character.
    if (i + 1 < n && ((c == ':' && s[i + 1] == ':') ||
                      (c == '[' && s[i + 1] == '[') ||
                      (c == ']' && s[i + 1] == ']'))) {
      out.toks.push_back({Tok::kPunct, s.substr(i, 2), line});
      i += 2;
      continue;
    }
    out.toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// --- directive parsing ----------------------------------------------------

struct Directives {
  std::set<std::string> allowed;  // rule ids suppressed for this file
  std::string virtual_path;       // from path(...), empty if absent
};

[[nodiscard]] Directives parse_directives(const std::vector<Comment>& comments) {
  Directives d;
  for (const Comment& c : comments) {
    std::size_t at = c.text.find("lap-lint:");
    while (at != std::string::npos) {
      std::size_t p = at + 9;
      while (p < c.text.size() &&
             std::isspace(static_cast<unsigned char>(c.text[p])) != 0) {
        ++p;
      }
      std::size_t open = c.text.find('(', p);
      std::size_t close =
          open == std::string::npos ? std::string::npos : c.text.find(')', open);
      if (open != std::string::npos && close != std::string::npos) {
        const std::string verb = c.text.substr(p, open - p);
        std::string body = c.text.substr(open + 1, close - open - 1);
        if (verb == "allow") {
          std::stringstream ss(body);
          std::string id;
          while (std::getline(ss, id, ',')) {
            id.erase(0, id.find_first_not_of(" \t"));
            id.erase(id.find_last_not_of(" \t") + 1);
            if (!id.empty()) d.allowed.insert(id);
          }
        } else if (verb == "path") {
          body.erase(0, body.find_first_not_of(" \t"));
          body.erase(body.find_last_not_of(" \t") + 1);
          d.virtual_path = body;
        }
      }
      at = c.text.find("lap-lint:", at + 9);
    }
  }
  return d;
}

// --- file context + rule plumbing ----------------------------------------

struct FileCtx {
  std::string path;  // effective path, '/' separators
  std::string rel;   // path after the last "src/" component; empty if none
  bool in_src = false;
  bool is_header = false;
  const Lexed* lx = nullptr;
  const Directives* dirs = nullptr;
};

void emit(const FileCtx& ctx, std::vector<Diagnostic>& out,
          const std::string& rule, int line, const std::string& msg) {
  if (ctx.dirs->allowed.count(rule) != 0) return;
  out.push_back({ctx.path, line, rule, msg});
}

[[nodiscard]] bool rel_in(const FileCtx& ctx,
                          std::initializer_list<const char*> dirs) {
  if (!ctx.in_src) return false;
  for (const char* d : dirs) {
    const std::string prefix = std::string(d) + "/";
    if (ctx.rel.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

[[nodiscard]] bool has_include(const FileCtx& ctx, const std::string& name) {
  for (const Include& inc : ctx.lx->includes) {
    if (inc.name == name) return true;
  }
  return false;
}

/// Token text at `i`, or "" past the end (lets rules look around freely).
[[nodiscard]] const std::string& tok_at(const std::vector<Tok>& t,
                                        std::size_t i) {
  static const std::string empty;
  return i < t.size() ? t[i].text : empty;
}

[[nodiscard]] bool prefixed_std(const std::vector<Tok>& t, std::size_t i) {
  return i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
}

// --- rules ----------------------------------------------------------------

// no-rand: ambient RNG.  Simulation code must draw randomness from the
// seeded util/rng.hpp so every run is reproducible.
void check_no_rand(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  static const std::set<std::string> kCalls = {"rand",    "srand",   "rand_r",
                                               "drand48", "lrand48", "mrand48",
                                               "srand48"};
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "random_device") {
      emit(ctx, out, "no-rand", t[i].line,
           "std::random_device is nondeterministic; use the seeded "
           "util/rng.hpp");
    } else if (kCalls.count(t[i].text) != 0 && tok_at(t, i + 1) == "(") {
      emit(ctx, out, "no-rand", t[i].line,
           "'" + t[i].text +
               "()' is ambient randomness; use the seeded util/rng.hpp");
    }
  }
}

// no-wallclock: real time leaking into simulation state breaks replay
// determinism; only simulated time (sim/engine.hpp) is allowed.
void check_no_wallclock(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  static const std::set<std::string> kClocks = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "gmtime"};
  for (const Tok& tok : ctx.lx->toks) {
    if (tok.kind == Tok::kIdent && kClocks.count(tok.text) != 0) {
      emit(ctx, out, "no-wallclock", tok.line,
           "'" + tok.text +
               "' reads wall-clock time; simulation code must use simulated "
               "time only");
    }
  }
}

// container-policy: the PR 3 hot-path dirs must use util/flat_hash.hpp,
// not the node-based std containers.
void check_container_policy(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!rel_in(ctx, {"cache", "core", "fs", "sim", "driver"})) return;
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "unordered_map" || t[i].text == "unordered_set") {
      emit(ctx, out, "container-policy", t[i].line,
           "std::" + t[i].text +
               " is banned on hot paths; use FlatHashMap/FlatHashSet "
               "(util/flat_hash.hpp)");
    } else if (t[i].text == "map" && prefixed_std(t, i)) {
      emit(ctx, out, "container-policy", t[i].line,
           "std::map is banned on hot paths; use FlatHashMap "
           "(util/flat_hash.hpp) or a sorted vector");
    }
  }
  for (const Include& inc : ctx.lx->includes) {
    if (inc.angled && (inc.name == "unordered_map" ||
                       inc.name == "unordered_set" || inc.name == "map")) {
      emit(ctx, out, "container-policy", inc.line,
           "<" + inc.name + "> include is banned on hot paths; use "
           "util/flat_hash.hpp");
    }
  }
}

/// Scan a template argument list opened by the '<' at `open` and decide
/// whether the FIRST depth-1 argument is a pointer type (ends in '*').
[[nodiscard]] bool first_template_arg_is_pointer(const std::vector<Tok>& t,
                                                 std::size_t open) {
  int depth = 1;
  std::string last;
  for (std::size_t i = open + 1; i < t.size() && depth > 0; ++i) {
    const std::string& x = t[i].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      --depth;
      if (depth == 0) return last == "*";
    } else if (x == "," && depth == 1) {
      return last == "*";
    } else if (x == ";" || x == "{") {
      return false;  // was a comparison, not a template argument list
    } else {
      last = x;
    }
  }
  return false;
}

// pointer-keyed-map: an ordered container keyed by a pointer iterates in
// address order — nondeterministic across runs (ASLR).
void check_pointer_keyed_map(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if ((t[i].text == "map" || t[i].text == "set" || t[i].text == "multimap" ||
         t[i].text == "multiset") &&
        prefixed_std(t, i) && tok_at(t, i + 1) == "<" &&
        first_template_arg_is_pointer(t, i + 1)) {
      emit(ctx, out, "pointer-keyed-map", t[i].line,
           "std::" + t[i].text +
               " keyed by a pointer iterates in address order "
               "(nondeterministic); key by a stable id instead");
    }
  }
}

// unordered-iteration: range-for over a std::unordered_* variable declared
// in this file.  Unordered iteration order is stdlib-defined, so anything
// it feeds (output, trace, simulation events) silently depends on it.
void check_unordered_iteration(const FileCtx& ctx,
                               std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const auto& t = ctx.lx->toks;
  // Pass 1: names declared as unordered containers.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
      continue;
    }
    if (tok_at(t, i + 1) != "<") continue;
    int depth = 1;
    std::size_t j = i + 2;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">") --depth;
      if (t[j].text == ";" || t[j].text == "{") break;  // not a declaration
    }
    if (depth == 0 && j < t.size() && t[j].kind == Tok::kIdent) {
      unordered_vars.insert(t[j].text);
    }
  }
  if (unordered_vars.empty()) return;
  // Pass 2: range-for statements whose range names one of them.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || tok_at(t, i + 1) != "(") continue;
    int depth = 1;
    std::size_t colon = 0;
    std::size_t j = i + 2;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") --depth;
      if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
      if (t[j].text == ";" && depth == 1) colon = 0;  // classic for loop
      if (depth == 1 && colon == 0 && t[j].text == "{") break;
    }
    if (colon == 0) continue;
    for (std::size_t k = colon + 1; k < j; ++k) {
      if (t[k].kind == Tok::kIdent && unordered_vars.count(t[k].text) != 0) {
        emit(ctx, out, "unordered-iteration", t[k].line,
             "iterating unordered container '" + t[k].text +
                 "' — order is stdlib-defined; use a deterministic "
                 "container or ordering");
        break;
      }
    }
  }
}

// trace-io-typed-errors: src/trace/io rejects malformed input with the
// typed TraceIoError taxonomy, never bare exceptions or abort().
void check_trace_io_errors(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src || ctx.rel.compare(0, 9, "trace/io/") != 0) return;
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "throw") {
      const std::string& next = tok_at(t, i + 1);
      if (next != "TraceIoError" && next != ";") {
        emit(ctx, out, "trace-io-typed-errors", t[i].line,
             "trace I/O must throw the typed TraceIoError (see "
             "trace/io/format.hpp), not '" +
                 next + "'");
      }
    } else if ((t[i].text == "abort" || t[i].text == "exit") &&
               tok_at(t, i + 1) == "(") {
      emit(ctx, out, "trace-io-typed-errors", t[i].line,
           "'" + t[i].text +
               "()' is banned in trace I/O; report via TraceIoError");
    }
  }
}

// nodiscard-result: error/result-carrying return types in the trace-I/O
// and check subsystems must be [[nodiscard]] so callers cannot silently
// drop a failure or a freshly-parsed artifact.
void check_nodiscard_result(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.is_header || !rel_in(ctx, {"trace", "check"})) return;
  static const std::set<std::string> kResultTypes = {
      "Trace", "TraceMeta", "TraceIoErrc", "CheckReport", "Scenario"};
  static const std::set<std::string> kDeclStart = {
      ";", "{", "}", ":", "public", "private", "protected"};
  static const std::set<std::string> kSpecifiers = {
      "virtual", "static", "inline", "constexpr", "friend", "explicit"};
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || kResultTypes.count(t[i].text) == 0) {
      continue;
    }
    // Return-type position: a plain function declaration `T name(`.
    if (!(i + 2 < t.size() && t[i + 1].kind == Tok::kIdent &&
          t[i + 2].text == "(")) {
      continue;
    }
    // Walk back over declaration specifiers, then over an attribute block
    // `[[...]]` (which satisfies the check when it names `nodiscard`),
    // and require a declaration boundary before all of that.
    std::size_t p = i;
    while (p > 0 && kSpecifiers.count(t[p - 1].text) != 0) --p;
    bool has_nodiscard = false;
    if (p > 0 && t[p - 1].text == "]]") {
      std::size_t q = p - 1;
      while (q > 0 && t[q].text != "[[") {
        if (t[q].text == "nodiscard") has_nodiscard = true;
        --q;
      }
      p = q;
    }
    const bool at_decl_start = p == 0 || kDeclStart.count(t[p - 1].text) != 0;
    if (!at_decl_start || has_nodiscard) continue;
    emit(ctx, out, "nodiscard-result", t[i].line,
         "'" + t[i].text + " " + t[i + 1].text +
             "(...)' returns a result type and must be [[nodiscard]]");
  }
}

// no-iostream-in-header: <iostream> in a header injects the ios_base
// static initializer into every TU; headers take <ostream>/<istream>.
void check_iostream_header(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src || !ctx.is_header) return;
  for (const Include& inc : ctx.lx->includes) {
    if (inc.angled && inc.name == "iostream") {
      emit(ctx, out, "no-iostream-in-header", inc.line,
           "<iostream> in a header drags the ios_base static initializer "
           "into every TU; include <ostream>/<istream> where needed");
    }
  }
}

// transitive-include: a curated symbol list must be included directly —
// relying on another header to drag the definition in breaks the first
// time that header sheds a dependency.
struct SymbolHeader {
  const char* symbol;  // identifier used as std::<symbol>
  const char* header;
};
constexpr SymbolHeader kCuratedSymbols[] = {
    {"vector", "vector"},
    {"string", "string"},
    {"unordered_map", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"optional", "optional"},
    {"variant", "variant"},
    {"function", "functional"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"sort", "algorithm"},
    {"stable_sort", "algorithm"},
    {"lower_bound", "algorithm"},
    {"upper_bound", "algorithm"},
    {"uint8_t", "cstdint"},
    {"uint16_t", "cstdint"},
    {"uint32_t", "cstdint"},
    {"uint64_t", "cstdint"},
    {"int8_t", "cstdint"},
    {"int16_t", "cstdint"},
    {"int32_t", "cstdint"},
    {"int64_t", "cstdint"},
};

void check_transitive_include(const FileCtx& ctx,
                              std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const auto& t = ctx.lx->toks;
  std::set<std::string> reported;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !prefixed_std(t, i)) continue;
    for (const SymbolHeader& sh : kCuratedSymbols) {
      if (t[i].text != sh.symbol) continue;
      if (has_include(ctx, sh.header) || reported.count(sh.symbol) != 0) break;
      reported.insert(sh.symbol);
      emit(ctx, out, "transitive-include", t[i].line,
           "std::" + t[i].text + " used without a direct #include <" +
               sh.header + "> (transitive includes are not a contract)");
      break;
    }
  }
}

// concurrency-containment: threads, locks, atomics and thread-local state
// may live only in the audited concurrency kernel — the engine's epoch
// scheduler, its spin barrier, the worker pool — plus the few leaf
// facilities documented thread-safe (log emission, the JSON trace sink,
// the sweep driver).  Model code must never synchronise ad hoc: anything
// crossing shards goes through Engine::post_at, whose mailbox exchange
// preserves the canonical event order.  An unsynchronised shortcut would
// race the epoch schedule in exactly the ways the differential wall exists
// to catch — ban the primitives and the race can't be written.
void check_concurrency_containment(const FileCtx& ctx,
                                   std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  static const std::set<std::string> kKernel = {
      "sim/engine.hpp",       "sim/engine.cpp",       "sim/spin_barrier.hpp",
      "util/thread_pool.hpp", "util/thread_pool.cpp", "util/logging.cpp",
      "obs/trace_event.hpp",  "obs/trace_event.cpp",  "driver/sweep.cpp"};
  if (kKernel.count(ctx.rel) != 0) return;
  static const std::set<std::string> kPrimitives = {
      "thread",          "jthread",
      "mutex",           "shared_mutex",
      "recursive_mutex", "timed_mutex",
      "atomic",          "atomic_flag",
      "atomic_ref",      "condition_variable",
      "condition_variable_any",
      "lock_guard",      "unique_lock",
      "scoped_lock",     "shared_lock",
      "future",          "promise",
      "async",           "counting_semaphore",
      "binary_semaphore", "latch",
      "call_once",       "once_flag",
      "stop_token",      "barrier"};
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "thread_local") {
      emit(ctx, out, "concurrency-containment", t[i].line,
           "thread_local state is banned outside the concurrency kernel; "
           "cross-shard effects go through Engine::post_at");
    } else if (kPrimitives.count(t[i].text) != 0 && prefixed_std(t, i)) {
      emit(ctx, out, "concurrency-containment", t[i].line,
           "std::" + t[i].text +
               " is banned outside the concurrency kernel; cross-shard "
               "effects go through Engine::post_at");
    }
  }
  static const std::set<std::string> kHeaders = {
      "thread",    "mutex",   "shared_mutex", "atomic", "condition_variable",
      "future",    "semaphore", "barrier",    "latch",  "stop_token"};
  for (const Include& inc : ctx.lx->includes) {
    if (inc.angled && kHeaders.count(inc.name) != 0) {
      emit(ctx, out, "concurrency-containment", inc.line,
           "<" + inc.name + "> include is banned outside the concurrency "
           "kernel; cross-shard effects go through Engine::post_at");
    }
  }
}

using CheckFn = void (*)(const FileCtx&, std::vector<Diagnostic>&);

struct Rule {
  const char* id;
  const char* summary;
  CheckFn fn;
};

constexpr Rule kRules[] = {
    {"no-rand",
     "ambient randomness (rand(), std::random_device, ...) banned in src/",
     check_no_rand},
    {"no-wallclock",
     "wall-clock reads (system_clock, steady_clock, gettimeofday, ...) "
     "banned in src/",
     check_no_wallclock},
    {"unordered-iteration",
     "range-for over a std::unordered_* container banned in src/",
     check_unordered_iteration},
    {"pointer-keyed-map",
     "std::map/std::set keyed by a pointer banned in src/",
     check_pointer_keyed_map},
    {"container-policy",
     "std::unordered_map/std::map banned in src/{cache,core,fs,sim,driver} "
     "(use util/flat_hash.hpp)",
     check_container_policy},
    {"trace-io-typed-errors",
     "src/trace/io throws typed TraceIoError only; no bare throw/abort",
     check_trace_io_errors},
    {"nodiscard-result",
     "result-returning APIs in src/trace and src/check headers must be "
     "[[nodiscard]]",
     check_nodiscard_result},
    {"no-iostream-in-header", "<iostream> banned in src/ headers",
     check_iostream_header},
    {"transitive-include",
     "curated std symbols must be included directly, not transitively",
     check_transitive_include},
    {"concurrency-containment",
     "threads/locks/atomics/thread_local banned in src/ outside the "
     "engine's concurrency kernel (cross-shard state goes through "
     "Engine::post_at)",
     check_concurrency_containment},
};

[[nodiscard]] std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

void fill_scope(FileCtx& ctx) {
  const std::string& p = ctx.path;
  std::size_t at = std::string::npos;
  if (p.compare(0, 4, "src/") == 0) at = 0;
  std::size_t found = p.rfind("/src/");
  if (found != std::string::npos) at = found + 1;
  if (at != std::string::npos) {
    ctx.in_src = true;
    ctx.rel = p.substr(at + 4);
  }
  const auto ends_with = [&p](const char* suf) {
    const std::size_t l = std::char_traits<char>::length(suf);
    return p.size() >= l && p.compare(p.size() - l, l, suf) == 0;
  };
  ctx.is_header = ends_with(".hpp") || ends_with(".h") || ends_with(".hh");
}

}  // namespace

std::vector<RuleInfo> rule_catalog() {
  std::vector<RuleInfo> out;
  for (const Rule& r : kRules) out.push_back({r.id, r.summary});
  return out;
}

bool is_known_rule(const std::string& id) {
  for (const Rule& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content,
                                    const Options& opts) {
  const Lexed lx = lex(content);
  const Directives dirs = parse_directives(lx.comments);

  FileCtx ctx;
  ctx.path = normalize(dirs.virtual_path.empty() ? path : dirs.virtual_path);
  ctx.lx = &lx;
  ctx.dirs = &dirs;
  fill_scope(ctx);

  std::vector<Diagnostic> out;
  for (const Rule& r : kRules) {
    if (!opts.only.empty() &&
        std::find(opts.only.begin(), opts.only.end(), r.id) ==
            opts.only.end()) {
      continue;
    }
    r.fn(ctx, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<Diagnostic> lint_file(const std::string& path,
                                  const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str(), opts);
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& opts) {
  namespace fs = std::filesystem;
  if (!fs::exists(root)) throw std::runtime_error("no such directory: " + root);
  std::vector<std::string> paths;
  for (const auto& e : fs::recursive_directory_iterator(root)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
        ext == ".hh") {
      paths.push_back(e.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Diagnostic> out;
  for (const std::string& p : paths) {
    std::vector<Diagnostic> d = lint_file(p, opts);
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

std::string format_diagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": error[" + d.rule +
         "]: " + d.message;
}

int run_cli(const std::vector<std::string>& args, std::string& out) {
  Options opts;
  std::vector<std::string> files;
  std::vector<std::string> trees;
  bool list_rules = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--list-rules") {
      list_rules = true;
    } else if (a.compare(0, 7, "--only=") == 0) {
      std::stringstream ss(a.substr(7));
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (id.empty()) continue;
        if (!is_known_rule(id)) {
          out += "lap_lint: unknown rule '" + id +
                 "' (see --list-rules)\n";
          return 2;
        }
        opts.only.push_back(id);
      }
    } else if (a == "--tree") {
      if (i + 1 >= args.size()) {
        out += "lap_lint: --tree needs a directory\n";
        return 2;
      }
      trees.push_back(args[++i]);
    } else if (a == "--help" || a == "-h") {
      out +=
          "usage: lap_lint [--only=rule[,rule...]] [--list-rules] "
          "[--tree DIR]... [FILE]...\n"
          "exit: 0 clean, 1 violations, 2 usage/I/O error\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      out += "lap_lint: unknown option '" + a + "'\n";
      return 2;
    } else {
      files.push_back(a);
    }
  }

  if (list_rules) {
    for (const RuleInfo& r : rule_catalog()) {
      out += r.id + "  " + r.summary + "\n";
    }
    return 0;
  }
  if (files.empty() && trees.empty()) {
    out += "lap_lint: nothing to lint (give files or --tree DIR)\n";
    return 2;
  }

  std::vector<Diagnostic> diags;
  try {
    for (const std::string& t : trees) {
      std::vector<Diagnostic> d = lint_tree(t, opts);
      diags.insert(diags.end(), d.begin(), d.end());
    }
    for (const std::string& f : files) {
      std::vector<Diagnostic> d = lint_file(f, opts);
      diags.insert(diags.end(), d.begin(), d.end());
    }
  } catch (const std::exception& e) {
    out += std::string("lap_lint: ") + e.what() + "\n";
    return 2;
  }

  for (const Diagnostic& d : diags) out += format_diagnostic(d) + "\n";
  if (!diags.empty()) {
    out += "lap_lint: " + std::to_string(diags.size()) + " violation" +
           (diags.size() == 1 ? "" : "s") + "\n";
    return 1;
  }
  return 0;
}

}  // namespace lap::lint
