#include "lint.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "index.hpp"
#include "lex.hpp"

namespace lap::lint {
namespace {

// --- directive parsing ----------------------------------------------------

struct Directives {
  std::set<std::string> allowed;  // rule ids suppressed for this file
  std::map<std::string, std::set<int>> allowed_lines;  // rule → lines
  std::string virtual_path;  // from path(...), empty if absent
};

[[nodiscard]] Directives parse_directives(const std::vector<Comment>& comments) {
  Directives d;
  for (const Comment& c : comments) {
    std::size_t at = c.text.find("lap-lint:");
    while (at != std::string::npos) {
      std::size_t p = at + 9;
      while (p < c.text.size() &&
             std::isspace(static_cast<unsigned char>(c.text[p])) != 0) {
        ++p;
      }
      std::size_t open = c.text.find('(', p);
      std::size_t close =
          open == std::string::npos ? std::string::npos : c.text.find(')', open);
      if (open != std::string::npos && close != std::string::npos) {
        const std::string verb = c.text.substr(p, open - p);
        std::string body = c.text.substr(open + 1, close - open - 1);
        if (verb == "allow" || verb == "allow-next-line") {
          std::stringstream ss(body);
          std::string id;
          while (std::getline(ss, id, ',')) {
            id.erase(0, id.find_first_not_of(" \t"));
            id.erase(id.find_last_not_of(" \t") + 1);
            if (id.empty()) continue;
            if (verb == "allow") {
              d.allowed.insert(id);
            } else {
              // Suppresses the line directly below the comment's line.
              d.allowed_lines[id].insert(c.line + 1);
            }
          }
        } else if (verb == "path") {
          body.erase(0, body.find_first_not_of(" \t"));
          body.erase(body.find_last_not_of(" \t") + 1);
          d.virtual_path = body;
        }
      }
      at = c.text.find("lap-lint:", at + 9);
    }
  }
  return d;
}

[[nodiscard]] bool suppressed(const Directives& dirs, const std::string& rule,
                              int line) {
  if (dirs.allowed.count(rule) != 0) return true;
  auto it = dirs.allowed_lines.find(rule);
  return it != dirs.allowed_lines.end() && it->second.count(line) != 0;
}

// --- file context + rule plumbing ----------------------------------------

struct FileCtx {
  std::string path;  // effective path, '/' separators
  std::string rel;   // path after the last "src/" component; empty if none
  bool in_src = false;
  bool is_header = false;
  const Lexed* lx = nullptr;
  const Directives* dirs = nullptr;
};

void emit(const FileCtx& ctx, std::vector<Diagnostic>& out,
          const std::string& rule, int line, const std::string& msg) {
  if (suppressed(*ctx.dirs, rule, line)) return;
  out.push_back({ctx.path, line, rule, msg});
}

[[nodiscard]] bool rel_in(const FileCtx& ctx,
                          std::initializer_list<const char*> dirs) {
  if (!ctx.in_src) return false;
  for (const char* d : dirs) {
    const std::string prefix = std::string(d) + "/";
    if (ctx.rel.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

[[nodiscard]] bool has_include(const FileCtx& ctx, const std::string& name) {
  for (const Include& inc : ctx.lx->includes) {
    if (inc.name == name) return true;
  }
  return false;
}

[[nodiscard]] bool prefixed_std(const std::vector<Tok>& t, std::size_t i) {
  return i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
}

// --- rules ----------------------------------------------------------------

// no-rand: ambient RNG.  Simulation code must draw randomness from the
// seeded util/rng.hpp so every run is reproducible.
void check_no_rand(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  static const std::set<std::string> kCalls = {"rand",    "srand",   "rand_r",
                                               "drand48", "lrand48", "mrand48",
                                               "srand48"};
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "random_device") {
      emit(ctx, out, "no-rand", t[i].line,
           "std::random_device is nondeterministic; use the seeded "
           "util/rng.hpp");
    } else if (kCalls.count(t[i].text) != 0 && tok_at(t, i + 1) == "(") {
      emit(ctx, out, "no-rand", t[i].line,
           "'" + t[i].text +
               "()' is ambient randomness; use the seeded util/rng.hpp");
    }
  }
}

// no-wallclock: real time leaking into simulation state breaks replay
// determinism; only simulated time (sim/engine.hpp) is allowed.
void check_no_wallclock(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  static const std::set<std::string> kClocks = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "gmtime"};
  for (const Tok& tok : ctx.lx->toks) {
    if (tok.kind == Tok::kIdent && kClocks.count(tok.text) != 0) {
      emit(ctx, out, "no-wallclock", tok.line,
           "'" + tok.text +
               "' reads wall-clock time; simulation code must use simulated "
               "time only");
    }
  }
}

// container-policy: the PR 3 hot-path dirs must use util/flat_hash.hpp,
// not the node-based std containers.
void check_container_policy(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!rel_in(ctx, {"cache", "core", "fs", "sim", "driver"})) return;
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "unordered_map" || t[i].text == "unordered_set") {
      emit(ctx, out, "container-policy", t[i].line,
           "std::" + t[i].text +
               " is banned on hot paths; use FlatHashMap/FlatHashSet "
               "(util/flat_hash.hpp)");
    } else if (t[i].text == "map" && prefixed_std(t, i)) {
      emit(ctx, out, "container-policy", t[i].line,
           "std::map is banned on hot paths; use FlatHashMap "
           "(util/flat_hash.hpp) or a sorted vector");
    }
  }
  for (const Include& inc : ctx.lx->includes) {
    if (inc.angled && (inc.name == "unordered_map" ||
                       inc.name == "unordered_set" || inc.name == "map")) {
      emit(ctx, out, "container-policy", inc.line,
           "<" + inc.name + "> include is banned on hot paths; use "
           "util/flat_hash.hpp");
    }
  }
}

/// Scan a template argument list opened by the '<' at `open` and decide
/// whether the FIRST depth-1 argument is a pointer type (ends in '*').
[[nodiscard]] bool first_template_arg_is_pointer(const std::vector<Tok>& t,
                                                 std::size_t open) {
  int depth = 1;
  std::string last;
  for (std::size_t i = open + 1; i < t.size() && depth > 0; ++i) {
    const std::string& x = t[i].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      --depth;
      if (depth == 0) return last == "*";
    } else if (x == "," && depth == 1) {
      return last == "*";
    } else if (x == ";" || x == "{") {
      return false;  // was a comparison, not a template argument list
    } else {
      last = x;
    }
  }
  return false;
}

// pointer-keyed-map: an ordered container keyed by a pointer iterates in
// address order — nondeterministic across runs (ASLR).
void check_pointer_keyed_map(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if ((t[i].text == "map" || t[i].text == "set" || t[i].text == "multimap" ||
         t[i].text == "multiset") &&
        prefixed_std(t, i) && tok_at(t, i + 1) == "<" &&
        first_template_arg_is_pointer(t, i + 1)) {
      emit(ctx, out, "pointer-keyed-map", t[i].line,
           "std::" + t[i].text +
               " keyed by a pointer iterates in address order "
               "(nondeterministic); key by a stable id instead");
    }
  }
}

// pointer-ordering: pointer VALUES flowing into an ordering or a hash —
// std::hash<T*>/std::less<T*> specializations and reinterpret_cast to
// [u]intptr_t — are nondeterministic under ASLR even when no container
// is involved (sort keys, tie-breakers, bucket choices).
void check_pointer_ordering(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if ((t[i].text == "hash" || t[i].text == "less" ||
         t[i].text == "greater") &&
        prefixed_std(t, i) && tok_at(t, i + 1) == "<" &&
        first_template_arg_is_pointer(t, i + 1)) {
      emit(ctx, out, "pointer-ordering", t[i].line,
           "std::" + t[i].text +
               "<T*> orders/hashes by address (nondeterministic under "
               "ASLR); derive the key from a stable id");
      continue;
    }
    if (t[i].text == "reinterpret_cast" && tok_at(t, i + 1) == "<") {
      for (std::size_t j = i + 2; j < t.size() && t[j].text != ">"; ++j) {
        if (t[j].text == "uintptr_t" || t[j].text == "intptr_t") {
          emit(ctx, out, "pointer-ordering", t[i].line,
               "reinterpret_cast to " + t[j].text +
                   " turns an address into an integer; any ordering or "
                   "hash built on it is nondeterministic under ASLR");
          break;
        }
      }
    }
  }
}

// float-accumulation: += / -= on a float/double variable on a simulation
// path.  Summation order there depends on event order and shard
// interleaving history; integer units (bytes, ns, counts) or an explicit
// compensated reduction keep runs bit-exact.
void check_float_accumulation(const FileCtx& ctx,
                              std::vector<Diagnostic>& out) {
  if (!rel_in(ctx, {"cache", "core", "fs", "sim", "disk", "net"})) return;
  const auto& t = ctx.lx->toks;
  std::set<std::string> float_vars;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "float" && t[i].text != "double") continue;
    if (t[i + 1].kind != Tok::kIdent) continue;
    const std::string& after = tok_at(t, i + 2);
    if (after == "=" || after == ";" || after == "{" || after == ",") {
      float_vars.insert(t[i + 1].text);
    }
  }
  if (float_vars.empty()) return;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || float_vars.count(t[i].text) == 0) continue;
    if ((t[i + 1].text == "+" || t[i + 1].text == "-") &&
        t[i + 2].text == "=") {
      emit(ctx, out, "float-accumulation", t[i].line,
           "floating-point accumulation into '" + t[i].text +
               "' is evaluation-order-sensitive on a simulation path; use "
               "integer units or a single end-of-run reduction");
    }
  }
}

// include-layering: the layer DAG of src/.  An include that points from a
// lower-ranked directory into a higher-ranked one is a back-edge: it
// couples a foundation layer to a consumer and eventually cycles.
//   util < {sim, trace} < obs < {cache, core, net, disk} < fs < driver
//        < check
[[nodiscard]] int layer_rank(const std::string& dir) {
  if (dir == "util") return 0;
  if (dir == "sim" || dir == "trace") return 1;
  if (dir == "obs") return 2;
  if (dir == "cache" || dir == "core" || dir == "net" || dir == "disk")
    return 3;
  if (dir == "fs") return 4;
  if (dir == "driver") return 5;
  if (dir == "check") return 6;
  return -1;
}

void check_include_layering(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const std::size_t slash = ctx.rel.find('/');
  if (slash == std::string::npos) return;
  const int self = layer_rank(ctx.rel.substr(0, slash));
  if (self < 0) return;
  for (const Include& inc : ctx.lx->includes) {
    if (inc.angled) continue;
    const std::size_t s = inc.name.find('/');
    if (s == std::string::npos) continue;
    const int target = layer_rank(inc.name.substr(0, s));
    if (target < 0 || target <= self) continue;
    emit(ctx, out, "include-layering", inc.line,
         "\"" + inc.name + "\" is a layering back-edge: src/" +
             ctx.rel.substr(0, slash) + " (rank " + std::to_string(self) +
             ") may not include layer rank " + std::to_string(target) +
             " (util < sim,trace < obs < cache,core,net,disk < fs < driver "
             "< check)");
  }
}

// unordered-iteration: iteration over a std::unordered_* variable
// declared in this file — range-for or explicit .begin()/.cbegin().
// Unordered iteration order is stdlib-defined, so anything it feeds
// (output, trace, simulation events) silently depends on it.
void check_unordered_iteration(const FileCtx& ctx,
                               std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const auto& t = ctx.lx->toks;
  // Pass 1: names declared as unordered containers.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
      continue;
    }
    if (tok_at(t, i + 1) != "<") continue;
    int depth = 1;
    std::size_t j = i + 2;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">") --depth;
      if (t[j].text == ";" || t[j].text == "{") break;  // not a declaration
    }
    if (depth == 0 && j < t.size() && t[j].kind == Tok::kIdent) {
      unordered_vars.insert(t[j].text);
    }
  }
  if (unordered_vars.empty()) return;
  // Pass 2: range-for statements whose range names one of them.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || tok_at(t, i + 1) != "(") continue;
    int depth = 1;
    std::size_t colon = 0;
    std::size_t j = i + 2;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") --depth;
      if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
      if (t[j].text == ";" && depth == 1) colon = 0;  // classic for loop
      if (depth == 1 && colon == 0 && t[j].text == "{") break;
    }
    if (colon == 0) continue;
    for (std::size_t k = colon + 1; k < j; ++k) {
      if (t[k].kind == Tok::kIdent && unordered_vars.count(t[k].text) != 0) {
        emit(ctx, out, "unordered-iteration", t[k].line,
             "iterating unordered container '" + t[k].text +
                 "' — order is stdlib-defined; use a deterministic "
                 "container or ordering");
        break;
      }
    }
  }
  // Pass 3: explicit iterator walks — u.begin()/u.cbegin() escape the
  // range-for detection above but leak the same order.
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || unordered_vars.count(t[i].text) == 0) {
      continue;
    }
    if (t[i + 1].text != "." && t[i + 1].text != "->") continue;
    const std::string& m = t[i + 2].text;
    if ((m == "begin" || m == "cbegin" || m == "rbegin") &&
        tok_at(t, i + 3) == "(") {
      emit(ctx, out, "unordered-iteration", t[i].line,
           "'" + t[i].text + "." + m +
               "()' iterates an unordered container — order is "
               "stdlib-defined; use a deterministic container or ordering");
    }
  }
}

// trace-io-typed-errors: src/trace/io rejects malformed input with the
// typed TraceIoError taxonomy, never bare exceptions or abort().
void check_trace_io_errors(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src || ctx.rel.compare(0, 9, "trace/io/") != 0) return;
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "throw") {
      const std::string& next = tok_at(t, i + 1);
      if (next != "TraceIoError" && next != ";") {
        emit(ctx, out, "trace-io-typed-errors", t[i].line,
             "trace I/O must throw the typed TraceIoError (see "
             "trace/io/format.hpp), not '" +
                 next + "'");
      }
    } else if ((t[i].text == "abort" || t[i].text == "exit") &&
               tok_at(t, i + 1) == "(") {
      emit(ctx, out, "trace-io-typed-errors", t[i].line,
           "'" + t[i].text +
               "()' is banned in trace I/O; report via TraceIoError");
    }
  }
}

// nodiscard-result: error/result-carrying return types in the trace-I/O
// and check subsystems must be [[nodiscard]] so callers cannot silently
// drop a failure or a freshly-parsed artifact.
void check_nodiscard_result(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.is_header || !rel_in(ctx, {"trace", "check"})) return;
  static const std::set<std::string> kResultTypes = {
      "Trace", "TraceMeta", "TraceIoErrc", "CheckReport", "Scenario"};
  static const std::set<std::string> kDeclStart = {
      ";", "{", "}", ":", "public", "private", "protected"};
  static const std::set<std::string> kSpecifiers = {
      "virtual", "static", "inline", "constexpr", "friend", "explicit"};
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || kResultTypes.count(t[i].text) == 0) {
      continue;
    }
    // Return-type position: a plain function declaration `T name(`.
    if (!(i + 2 < t.size() && t[i + 1].kind == Tok::kIdent &&
          t[i + 2].text == "(")) {
      continue;
    }
    // Walk back over declaration specifiers, then over an attribute block
    // `[[...]]` (which satisfies the check when it names `nodiscard`),
    // and require a declaration boundary before all of that.
    std::size_t p = i;
    while (p > 0 && kSpecifiers.count(t[p - 1].text) != 0) --p;
    bool has_nodiscard = false;
    if (p > 0 && t[p - 1].text == "]]") {
      std::size_t q = p - 1;
      while (q > 0 && t[q].text != "[[") {
        if (t[q].text == "nodiscard") has_nodiscard = true;
        --q;
      }
      p = q;
    }
    const bool at_decl_start = p == 0 || kDeclStart.count(t[p - 1].text) != 0;
    if (!at_decl_start || has_nodiscard) continue;
    emit(ctx, out, "nodiscard-result", t[i].line,
         "'" + t[i].text + " " + t[i + 1].text +
             "(...)' returns a result type and must be [[nodiscard]]");
  }
}

// no-iostream-in-header: <iostream> in a header injects the ios_base
// static initializer into every TU; headers take <ostream>/<istream>.
void check_iostream_header(const FileCtx& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.in_src || !ctx.is_header) return;
  for (const Include& inc : ctx.lx->includes) {
    if (inc.angled && inc.name == "iostream") {
      emit(ctx, out, "no-iostream-in-header", inc.line,
           "<iostream> in a header drags the ios_base static initializer "
           "into every TU; include <ostream>/<istream> where needed");
    }
  }
}

// transitive-include: a curated symbol list must be included directly —
// relying on another header to drag the definition in breaks the first
// time that header sheds a dependency.
struct SymbolHeader {
  const char* symbol;  // identifier used as std::<symbol>
  const char* header;
};
constexpr SymbolHeader kCuratedSymbols[] = {
    {"vector", "vector"},
    {"string", "string"},
    {"unordered_map", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"optional", "optional"},
    {"variant", "variant"},
    {"function", "functional"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"sort", "algorithm"},
    {"stable_sort", "algorithm"},
    {"lower_bound", "algorithm"},
    {"upper_bound", "algorithm"},
    {"uint8_t", "cstdint"},
    {"uint16_t", "cstdint"},
    {"uint32_t", "cstdint"},
    {"uint64_t", "cstdint"},
    {"int8_t", "cstdint"},
    {"int16_t", "cstdint"},
    {"int32_t", "cstdint"},
    {"int64_t", "cstdint"},
};

void check_transitive_include(const FileCtx& ctx,
                              std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  const auto& t = ctx.lx->toks;
  std::set<std::string> reported;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !prefixed_std(t, i)) continue;
    for (const SymbolHeader& sh : kCuratedSymbols) {
      if (t[i].text != sh.symbol) continue;
      if (has_include(ctx, sh.header) || reported.count(sh.symbol) != 0) break;
      reported.insert(sh.symbol);
      emit(ctx, out, "transitive-include", t[i].line,
           "std::" + t[i].text + " used without a direct #include <" +
               sh.header + "> (transitive includes are not a contract)");
      break;
    }
  }
}

// concurrency-containment: threads, locks, atomics and thread-local state
// may live only in the audited concurrency kernel — the engine's epoch
// scheduler, its spin barrier, the worker pool — plus the few leaf
// facilities documented thread-safe (log emission, the JSON trace sink,
// the sweep driver).  Model code must never synchronise ad hoc: anything
// crossing shards goes through Engine::post_at, whose mailbox exchange
// preserves the canonical event order.  An unsynchronised shortcut would
// race the epoch schedule in exactly the ways the differential wall exists
// to catch — ban the primitives and the race can't be written.
void check_concurrency_containment(const FileCtx& ctx,
                                   std::vector<Diagnostic>& out) {
  if (!ctx.in_src) return;
  static const std::set<std::string> kKernel = {
      "sim/engine.hpp",       "sim/engine.cpp",       "sim/spin_barrier.hpp",
      "util/thread_pool.hpp", "util/thread_pool.cpp", "util/logging.cpp",
      "obs/trace_event.hpp",  "obs/trace_event.cpp",  "driver/sweep.cpp"};
  if (kKernel.count(ctx.rel) != 0) return;
  static const std::set<std::string> kPrimitives = {
      "thread",          "jthread",
      "mutex",           "shared_mutex",
      "recursive_mutex", "timed_mutex",
      "atomic",          "atomic_flag",
      "atomic_ref",      "condition_variable",
      "condition_variable_any",
      "lock_guard",      "unique_lock",
      "scoped_lock",     "shared_lock",
      "future",          "promise",
      "async",           "counting_semaphore",
      "binary_semaphore", "latch",
      "call_once",       "once_flag",
      "stop_token",      "barrier"};
  const auto& t = ctx.lx->toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "thread_local") {
      emit(ctx, out, "concurrency-containment", t[i].line,
           "thread_local state is banned outside the concurrency kernel; "
           "cross-shard effects go through Engine::post_at");
    } else if (kPrimitives.count(t[i].text) != 0 && prefixed_std(t, i)) {
      emit(ctx, out, "concurrency-containment", t[i].line,
           "std::" + t[i].text +
               " is banned outside the concurrency kernel; cross-shard "
               "effects go through Engine::post_at");
    }
  }
  static const std::set<std::string> kHeaders = {
      "thread",    "mutex",   "shared_mutex", "atomic", "condition_variable",
      "future",    "semaphore", "barrier",    "latch",  "stop_token"};
  for (const Include& inc : ctx.lx->includes) {
    if (inc.angled && kHeaders.count(inc.name) != 0) {
      emit(ctx, out, "concurrency-containment", inc.line,
           "<" + inc.name + "> include is banned outside the concurrency "
           "kernel; cross-shard effects go through Engine::post_at");
    }
  }
}

using CheckFn = void (*)(const FileCtx&, std::vector<Diagnostic>&);

struct Rule {
  const char* id;
  const char* summary;
  const char* scope;  // "tree-wide", "directory-scoped" or "cross-TU"
  bool needs_index;
  CheckFn fn;  // nullptr for the index-backed rules (run in cross phase)
};

constexpr Rule kRules[] = {
    {"no-rand",
     "ambient randomness (rand(), std::random_device, ...) banned in src/",
     "tree-wide", false, check_no_rand},
    {"no-wallclock",
     "wall-clock reads (system_clock, steady_clock, gettimeofday, ...) "
     "banned in src/",
     "tree-wide", false, check_no_wallclock},
    {"unordered-iteration",
     "iteration (range-for or .begin()) over a std::unordered_* container "
     "banned in src/",
     "tree-wide", false, check_unordered_iteration},
    {"pointer-keyed-map",
     "std::map/std::set keyed by a pointer banned in src/",
     "tree-wide", false, check_pointer_keyed_map},
    {"container-policy",
     "std::unordered_map/std::map banned in src/{cache,core,fs,sim,driver} "
     "(use util/flat_hash.hpp)",
     "directory-scoped", false, check_container_policy},
    {"trace-io-typed-errors",
     "src/trace/io throws typed TraceIoError only; no bare throw/abort",
     "directory-scoped", false, check_trace_io_errors},
    {"nodiscard-result",
     "result-returning APIs in src/trace and src/check headers must be "
     "[[nodiscard]]",
     "directory-scoped", false, check_nodiscard_result},
    {"no-iostream-in-header", "<iostream> banned in src/ headers",
     "tree-wide", false, check_iostream_header},
    {"transitive-include",
     "curated std symbols must be included directly, not transitively",
     "tree-wide", false, check_transitive_include},
    {"concurrency-containment",
     "threads/locks/atomics/thread_local banned in src/ outside the "
     "engine's concurrency kernel (cross-shard state goes through "
     "Engine::post_at)",
     "tree-wide", false, check_concurrency_containment},
    {"pointer-ordering",
     "std::hash/less/greater<T*> and reinterpret_cast<[u]intptr_t> banned "
     "in src/ (address-derived orderings break under ASLR)",
     "tree-wide", false, check_pointer_ordering},
    {"float-accumulation",
     "+=/-= on float/double banned in src/{cache,core,fs,sim,disk,net} "
     "(summation order is event-order-sensitive)",
     "directory-scoped", false, check_float_accumulation},
    {"include-layering",
     "no back-edges in the src/ layer DAG (util < sim,trace < obs < "
     "cache,core,net,disk < fs < driver < check)",
     "tree-wide", false, check_include_layering},
    {"pod-init",
     "scalar members of src/sim structs and *Mail/*Event/*Msg structs "
     "must carry default member initializers",
     "directory-scoped", true, nullptr},
    {"index-parse",
     "the declaration indexer reports malformed/truncated/ambiguous "
     "declarations as typed diagnostics",
     "cross-TU", true, nullptr},
    {"domain-confinement",
     "state owned by one domain (lap-owns) may only be reached from that "
     "domain's code (lap-runs / hop_to / post_at lambdas); crossing "
     "domains requires Engine::post_at",
     "cross-TU", true, nullptr},
};

[[nodiscard]] bool rule_enabled(const Options& opts, const std::string& id) {
  return opts.only.empty() ||
         std::find(opts.only.begin(), opts.only.end(), id) != opts.only.end();
}

[[nodiscard]] std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

void fill_scope(FileCtx& ctx) {
  const std::string& p = ctx.path;
  std::size_t at = std::string::npos;
  if (p.compare(0, 4, "src/") == 0) at = 0;
  std::size_t found = p.rfind("/src/");
  if (found != std::string::npos) at = found + 1;
  if (at != std::string::npos) {
    ctx.in_src = true;
    ctx.rel = p.substr(at + 4);
  }
  const auto ends_with = [&p](const char* suf) {
    const std::size_t l = std::char_traits<char>::length(suf);
    return p.size() >= l && p.compare(p.size() - l, l, suf) == 0;
  };
  ctx.is_header = ends_with(".hpp") || ends_with(".h") || ends_with(".hh");
}

[[nodiscard]] std::string path_src_rel(const std::string& path) {
  FileCtx ctx;
  ctx.path = path;
  fill_scope(ctx);
  return ctx.rel;
}

// --- corpus pipeline ------------------------------------------------------

/// One translation unit moving through the pipeline.
struct Unit {
  std::string disk_path;
  std::string content;
  std::uint64_t hash = 0;  // content + disk path, for the cache
  bool cached = false;     // per-file diags came from the cache
  Lexed lx;
  Directives dirs;
  std::string eff_path;
  std::vector<Diagnostic> per_file;  // per-file rule diags, post-suppression
};

[[nodiscard]] std::uint64_t fnv1a(const std::string& s,
                                  std::uint64_t h = 1469598103934665603ULL) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void analyze_unit(Unit& u, const Options& opts) {
  u.lx = lex(u.content);
  u.dirs = parse_directives(u.lx.comments);
  u.eff_path =
      normalize(u.dirs.virtual_path.empty() ? u.disk_path : u.dirs.virtual_path);
  FileCtx ctx;
  ctx.path = u.eff_path;
  ctx.lx = &u.lx;
  ctx.dirs = &u.dirs;
  fill_scope(ctx);
  for (const Rule& r : kRules) {
    if (r.fn == nullptr || !rule_enabled(opts, r.id)) continue;
    r.fn(ctx, u.per_file);
  }
  std::stable_sort(u.per_file.begin(), u.per_file.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
}

/// Lex-only pass for units whose per-file diags came from the cache but
/// whose tokens/directives the cross-TU phase still needs.
void relex_unit(Unit& u) {
  u.lx = lex(u.content);
  u.dirs = parse_directives(u.lx.comments);
  u.eff_path =
      normalize(u.dirs.virtual_path.empty() ? u.disk_path : u.dirs.virtual_path);
}

/// The index-backed rules: index-parse, domain-confinement, pod-init.
/// Returns diagnostics with suppression already applied.
[[nodiscard]] std::vector<Diagnostic> cross_tu_diags(std::vector<Unit>& units,
                                                     const Options& opts) {
  const bool want_parse = rule_enabled(opts, "index-parse");
  const bool want_conf = rule_enabled(opts, "domain-confinement");
  const bool want_pod = rule_enabled(opts, "pod-init");
  if (!want_parse && !want_conf && !want_pod) return {};

  Index idx;
  std::vector<ParseDiag> parse_diags;
  for (Unit& u : units) {
    IndexedFile f;
    f.path = u.eff_path;
    f.lx = &u.lx;
    index_file(idx, std::move(f), parse_diags);
  }
  resolve_owners(idx, parse_diags);

  std::map<std::string, const Directives*> dirs_of;
  for (const Unit& u : units) dirs_of.emplace(u.eff_path, &u.dirs);
  const auto push = [&](std::vector<Diagnostic>& out, const std::string& rule,
                        const ParseDiag& pd) {
    auto it = dirs_of.find(pd.file);
    if (it != dirs_of.end() && suppressed(*it->second, rule, pd.line)) return;
    out.push_back({pd.file, pd.line, rule, pd.message});
  };

  std::vector<Diagnostic> out;
  if (want_parse) {
    for (const ParseDiag& pd : parse_diags) push(out, "index-parse", pd);
  }
  if (want_pod) {
    for (const ClassDecl& c : idx.classes) {
      const std::string rel = path_src_rel(c.file);
      if (rel.empty()) continue;
      const bool sim_struct = rel.compare(0, 4, "sim/") == 0;
      const auto name_ends = [&c](const char* suf) {
        const std::size_t l = std::char_traits<char>::length(suf);
        return c.name.size() >= l &&
               c.name.compare(c.name.size() - l, l, suf) == 0;
      };
      if (!sim_struct && !name_ends("Mail") && !name_ends("Event") &&
          !name_ends("Msg")) {
        continue;
      }
      for (const FieldDecl& f : c.fields) {
        if (!f.scalar || f.has_init || f.is_const) continue;
        push(out, "pod-init",
             {c.file, f.line,
              "POD member '" + f.name + "' of " +
                  (sim_struct ? "engine struct '" : "event/mail struct '") +
                  c.name +
                  "' has no default initializer; indeterminate bits here "
                  "travel between domains"});
      }
    }
  }
  if (want_conf) {
    std::vector<ParseDiag> conf;
    check_confinement(idx, conf);
    for (const ParseDiag& pd : conf) push(out, "domain-confinement", pd);
  }
  return out;
}

/// Analyze a whole corpus: per-file rules (parallel under opts.jobs),
/// then the cross-TU phase.  Units must already hold disk_path+content.
[[nodiscard]] std::vector<Diagnostic> run_corpus(std::vector<Unit>& units,
                                                 const Options& opts) {
  const int jobs = std::max(1, opts.jobs);
  if (jobs == 1 || units.size() < 2) {
    for (Unit& u : units) {
      if (!u.cached) {
        analyze_unit(u, opts);
      } else {
        relex_unit(u);
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    const int n = std::min<int>(jobs, static_cast<int>(units.size()));
    pool.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) {
      pool.emplace_back([&units, &next, &opts] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= units.size()) return;
          if (!units[i].cached) {
            analyze_unit(units[i], opts);
          } else {
            relex_unit(units[i]);
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  std::vector<Diagnostic> out;
  for (const Unit& u : units) {
    out.insert(out.end(), u.per_file.begin(), u.per_file.end());
  }
  std::vector<Diagnostic> cross = cross_tu_diags(units, opts);
  out.insert(out.end(), cross.begin(), cross.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  return out;
}

[[nodiscard]] std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[nodiscard]] std::vector<std::string> collect_tree(const std::string& root) {
  namespace fs = std::filesystem;
  if (!fs::exists(root)) throw std::runtime_error("no such directory: " + root);
  std::vector<std::string> paths;
  for (const auto& e : fs::recursive_directory_iterator(root)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
        ext == ".hh") {
      paths.push_back(e.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// --- incremental cache ----------------------------------------------------
//
// Text format, one header line then per-file and corpus entries:
//   lap-lint-cache v1 <cfg-hash>
//   F <unit-hash> <n-diags> <path>
//   D <line>\t<rule>\t<file>\t<message>
//   X <corpus-hash> <n-diags>
//   D ...
// The cfg hash covers the rule set and the --only list, so a cache file
// is silently ignored whenever it was written by a different
// configuration (or analyzer version).

[[nodiscard]] std::uint64_t cfg_hash(const Options& opts) {
  std::uint64_t h = fnv1a("lap-lint-cache-v1");
  for (const Rule& r : kRules) h = fnv1a(r.id, h);
  std::vector<std::string> only = opts.only;
  std::sort(only.begin(), only.end());
  for (const std::string& o : only) h = fnv1a("only:" + o, h);
  return h;
}

struct Cache {
  std::map<std::uint64_t, std::vector<Diagnostic>> per_file;
  std::uint64_t corpus_hash = 0;
  bool has_corpus = false;
  std::vector<Diagnostic> corpus_diags;
};

[[nodiscard]] bool read_cached_diag(const std::string& line, Diagnostic& d) {
  if (line.compare(0, 2, "D ") != 0) return false;
  std::size_t t1 = line.find('\t');
  if (t1 == std::string::npos) return false;
  std::size_t t2 = line.find('\t', t1 + 1);
  if (t2 == std::string::npos) return false;
  std::size_t t3 = line.find('\t', t2 + 1);
  if (t3 == std::string::npos) return false;
  try {
    d.line = std::stoi(line.substr(2, t1 - 2));
  } catch (const std::exception&) {
    return false;
  }
  d.rule = line.substr(t1 + 1, t2 - t1 - 1);
  d.file = line.substr(t2 + 1, t3 - t2 - 1);
  d.message = line.substr(t3 + 1);
  return true;
}

[[nodiscard]] Cache load_cache(const std::string& path, const Options& opts) {
  Cache c;
  std::ifstream in(path);
  if (!in) return c;
  std::string line;
  if (!std::getline(in, line)) return c;
  {
    std::istringstream hdr(line);
    std::string magic;
    std::string ver;
    std::uint64_t h = 0;
    if (!(hdr >> magic >> ver >> h) || magic != "lap-lint-cache" ||
        ver != "v1" || h != cfg_hash(opts)) {
      return c;
    }
  }
  std::vector<Diagnostic>* sink = nullptr;
  while (std::getline(in, line)) {
    if (line.compare(0, 2, "F ") == 0) {
      std::istringstream ss(line.substr(2));
      std::uint64_t h = 0;
      std::size_t n = 0;
      if (!(ss >> h >> n)) return Cache{};
      sink = &c.per_file[h];
    } else if (line.compare(0, 2, "X ") == 0) {
      std::istringstream ss(line.substr(2));
      std::size_t n = 0;
      if (!(ss >> c.corpus_hash >> n)) return Cache{};
      c.has_corpus = true;
      sink = &c.corpus_diags;
    } else if (line.compare(0, 2, "D ") == 0) {
      Diagnostic d;
      if (sink == nullptr || !read_cached_diag(line, d)) return Cache{};
      sink->push_back(std::move(d));
    }
  }
  return c;
}

void save_cache(const std::string& path, const Options& opts,
                const std::vector<Unit>& units, std::uint64_t corpus_hash,
                const std::vector<Diagnostic>& corpus_diags) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;  // cache is best-effort; never fail the run over it
  out << "lap-lint-cache v1 " << cfg_hash(opts) << "\n";
  const auto write_diag = [&out](const Diagnostic& d) {
    out << "D " << d.line << '\t' << d.rule << '\t' << d.file << '\t'
        << d.message << "\n";
  };
  for (const Unit& u : units) {
    out << "F " << u.hash << ' ' << u.per_file.size() << ' ' << u.disk_path
        << "\n";
    for (const Diagnostic& d : u.per_file) write_diag(d);
  }
  out << "X " << corpus_hash << ' ' << corpus_diags.size() << "\n";
  for (const Diagnostic& d : corpus_diags) write_diag(d);
}

// --- SARIF ----------------------------------------------------------------

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<RuleInfo> rule_catalog() {
  std::vector<RuleInfo> out;
  for (const Rule& r : kRules) {
    out.push_back({r.id, r.summary, r.scope, r.needs_index});
  }
  return out;
}

bool is_known_rule(const std::string& id) {
  for (const Rule& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

std::vector<Diagnostic> lint_corpus(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Options& opts) {
  std::vector<Unit> units(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    units[i].disk_path = files[i].first;
    units[i].content = files[i].second;
  }
  return run_corpus(units, opts);
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content,
                                    const Options& opts) {
  return lint_corpus({{path, content}}, opts);
}

std::vector<Diagnostic> lint_file(const std::string& path,
                                  const Options& opts) {
  return lint_source(path, slurp_file(path), opts);
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& opts) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& p : collect_tree(root)) {
    files.emplace_back(p, slurp_file(p));
  }
  return lint_corpus(files, opts);
}

std::string format_diagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": error[" + d.rule +
         "]: " + d.message;
}

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  std::string s;
  s += "{\n";
  s += "  \"$schema\": "
       "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  s += "  \"version\": \"2.1.0\",\n";
  s += "  \"runs\": [\n    {\n";
  s += "      \"tool\": {\n        \"driver\": {\n";
  s += "          \"name\": \"lap_lint\",\n";
  s += "          \"rules\": [\n";
  const std::vector<RuleInfo> cat = rule_catalog();
  for (std::size_t i = 0; i < cat.size(); ++i) {
    s += "            {\"id\": \"" + json_escape(cat[i].id) +
         "\", \"shortDescription\": {\"text\": \"" +
         json_escape(cat[i].summary) + "\"}}";
    s += i + 1 < cat.size() ? ",\n" : "\n";
  }
  s += "          ]\n        }\n      },\n";
  s += "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    s += "        {\"ruleId\": \"" + json_escape(d.rule) +
         "\", \"level\": \"error\", \"message\": {\"text\": \"" +
         json_escape(d.message) + "\"}, \"locations\": [{" +
         "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
         json_escape(d.file) + "\"}, \"region\": {\"startLine\": " +
         std::to_string(d.line > 0 ? d.line : 1) + "}}}]}";
    s += i + 1 < diags.size() ? ",\n" : "\n";
  }
  s += "      ]\n    }\n  ]\n}\n";
  return s;
}

int run_cli(const std::vector<std::string>& args, std::string& out) {
  Options opts;
  std::vector<std::string> files;
  std::vector<std::string> trees;
  std::string cache_path;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool list_rules = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next_arg = [&](const char* what, std::string& into) {
      if (i + 1 >= args.size()) {
        out += std::string("lap_lint: ") + what + "\n";
        return false;
      }
      into = args[++i];
      return true;
    };
    if (a == "--list-rules") {
      list_rules = true;
    } else if (a.compare(0, 7, "--only=") == 0) {
      std::stringstream ss(a.substr(7));
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (id.empty()) continue;
        if (!is_known_rule(id)) {
          out += "lap_lint: unknown rule '" + id +
                 "' (see --list-rules)\n";
          return 2;
        }
        opts.only.push_back(id);
      }
    } else if (a == "--tree") {
      std::string t;
      if (!next_arg("--tree needs a directory", t)) return 2;
      trees.push_back(t);
    } else if (a == "--jobs") {
      std::string n;
      if (!next_arg("--jobs needs a count", n)) return 2;
      try {
        opts.jobs = std::max(1, std::stoi(n));
      } catch (const std::exception&) {
        out += "lap_lint: --jobs needs a number, got '" + n + "'\n";
        return 2;
      }
    } else if (a == "--cache") {
      if (!next_arg("--cache needs a file", cache_path)) return 2;
    } else if (a == "--sarif") {
      if (!next_arg("--sarif needs a file", sarif_path)) return 2;
    } else if (a == "--baseline") {
      if (!next_arg("--baseline needs a file", baseline_path)) return 2;
    } else if (a == "--write-baseline") {
      if (!next_arg("--write-baseline needs a file", write_baseline_path)) {
        return 2;
      }
    } else if (a == "--help" || a == "-h") {
      out +=
          "usage: lap_lint [--only=rule[,rule...]] [--list-rules] "
          "[--jobs N] [--cache FILE] [--sarif FILE] [--baseline FILE] "
          "[--write-baseline FILE] [--tree DIR]... [FILE]...\n"
          "exit: 0 clean, 1 violations, 2 usage/I/O error\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      out += "lap_lint: unknown option '" + a + "'\n";
      return 2;
    } else {
      files.push_back(a);
    }
  }

  if (list_rules) {
    for (const RuleInfo& r : rule_catalog()) {
      std::string line = r.id;
      line.append(line.size() < 24 ? 24 - line.size() : 1, ' ');
      std::string scope = "[" + r.scope + (r.needs_index ? ", index]" : "]");
      scope.append(scope.size() < 26 ? 26 - scope.size() : 1, ' ');
      out += line + scope + r.summary + "\n";
    }
    return 0;
  }
  if (files.empty() && trees.empty()) {
    out += "lap_lint: nothing to lint (give files or --tree DIR)\n";
    return 2;
  }

  std::vector<Diagnostic> diags;
  try {
    std::vector<Unit> units;
    for (const std::string& t : trees) {
      for (const std::string& p : collect_tree(t)) {
        Unit u;
        u.disk_path = p;
        u.content = slurp_file(p);
        units.push_back(std::move(u));
      }
    }
    for (const std::string& f : files) {
      Unit u;
      u.disk_path = f;
      u.content = slurp_file(f);
      units.push_back(std::move(u));
    }

    Cache cache;
    std::uint64_t corpus_hash = fnv1a("corpus");
    if (!cache_path.empty()) {
      cache = load_cache(cache_path, opts);
      for (Unit& u : units) {
        u.hash = fnv1a(u.disk_path, fnv1a(u.content));
        auto it = cache.per_file.find(u.hash);
        if (it != cache.per_file.end()) {
          u.cached = true;
          u.per_file = it->second;
        }
        corpus_hash = fnv1a(std::to_string(u.hash), corpus_hash);
      }
    }

    const bool corpus_warm = !cache_path.empty() && cache.has_corpus &&
                             cache.corpus_hash == corpus_hash;
    std::vector<Diagnostic> cross;
    if (corpus_warm &&
        std::all_of(units.begin(), units.end(),
                    [](const Unit& u) { return u.cached; })) {
      // Fully warm: nothing to lex at all.
      cross = cache.corpus_diags;
      for (const Unit& u : units) {
        diags.insert(diags.end(), u.per_file.begin(), u.per_file.end());
      }
      diags.insert(diags.end(), cross.begin(), cross.end());
      std::stable_sort(diags.begin(), diags.end(),
                       [](const Diagnostic& a, const Diagnostic& b) {
                         return a.file != b.file ? a.file < b.file
                                                 : a.line < b.line;
                       });
    } else {
      diags = run_corpus(units, opts);
      if (!cache_path.empty()) {
        // run_corpus interleaved per-file and cross diags; recover the
        // cross set as everything not attributed to a unit's own list.
        std::size_t per_file_total = 0;
        for (const Unit& u : units) per_file_total += u.per_file.size();
        if (diags.size() >= per_file_total) {
          std::multiset<std::string> own;
          for (const Unit& u : units) {
            for (const Diagnostic& d : u.per_file) own.insert(format_diagnostic(d));
          }
          for (const Diagnostic& d : diags) {
            auto it = own.find(format_diagnostic(d));
            if (it != own.end()) {
              own.erase(it);
            } else {
              cross.push_back(d);
            }
          }
        }
        save_cache(cache_path, opts, units, corpus_hash, cross);
      }
    }
  } catch (const std::exception& e) {
    out += std::string("lap_lint: ") + e.what() + "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::set<std::string> entries;
    for (const Diagnostic& d : diags) entries.insert(d.rule + " " + d.file);
    std::ofstream bl(write_baseline_path, std::ios::trunc);
    if (!bl) {
      out += "lap_lint: cannot write baseline " + write_baseline_path + "\n";
      return 2;
    }
    bl << "# lap_lint baseline: `<rule> <path>` pairs grandfathered from\n"
          "# the current tree.  Regenerate with --write-baseline; entries\n"
          "# that no longer match anything are reported as stale.\n";
    for (const std::string& e : entries) bl << e << "\n";
    out += "lap_lint: wrote " + std::to_string(entries.size()) +
           " baseline entr" + (entries.size() == 1 ? "y" : "ies") + " to " +
           write_baseline_path + "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::ifstream bl(baseline_path);
    if (!bl) {
      out += "lap_lint: cannot read baseline " + baseline_path + "\n";
      return 2;
    }
    std::map<std::string, int> entries;  // "rule path" → match count
    std::string line;
    while (std::getline(bl, line)) {
      const std::size_t h = line.find('#');
      if (h != std::string::npos) line.erase(h);
      line.erase(0, line.find_first_not_of(" \t"));
      line.erase(line.find_last_not_of(" \t\r") + 1);
      if (!line.empty()) entries.emplace(line, 0);
    }
    std::vector<Diagnostic> kept;
    for (Diagnostic& d : diags) {
      auto it = entries.find(d.rule + " " + d.file);
      if (it != entries.end()) {
        ++it->second;
      } else {
        kept.push_back(std::move(d));
      }
    }
    diags = std::move(kept);
    for (const auto& [entry, hits] : entries) {
      if (hits == 0) {
        out += "lap_lint: note: stale baseline entry '" + entry +
               "' (no longer matches; remove it)\n";
      }
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream sf(sarif_path, std::ios::trunc);
    if (!sf) {
      out += "lap_lint: cannot write SARIF " + sarif_path + "\n";
      return 2;
    }
    sf << to_sarif(diags);
  }

  for (const Diagnostic& d : diags) out += format_diagnostic(d) + "\n";
  if (!diags.empty()) {
    out += "lap_lint: " + std::to_string(diags.size()) + " violation" +
           (diags.size() == 1 ? "" : "s") + "\n";
    return 1;
  }
  return 0;
}

}  // namespace lap::lint
