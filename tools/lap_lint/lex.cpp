#include "lex.hpp"

#include <algorithm>
#include <cctype>

namespace lap::lint {
namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Consume a raw string literal starting at the opening quote of
/// R"delim( ... )delim".  Returns the index one past the closing quote.
[[nodiscard]] std::size_t skip_raw_string(const std::string& s, std::size_t i,
                                          int& line) {
  // s[i] == '"'; collect the delimiter up to '('.
  std::size_t j = i + 1;
  std::string delim;
  while (j < s.size() && s[j] != '(') delim += s[j++];
  const std::string closer = ")" + delim + "\"";
  std::size_t end = s.find(closer, j);
  if (end == std::string::npos) return s.size();
  for (std::size_t k = i; k < end + closer.size(); ++k) {
    if (s[k] == '\n') ++line;
  }
  return end + closer.size();
}

}  // namespace

Lexed lex(const std::string& s) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  bool line_start = true;  // nothing but whitespace since the last newline

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t j = s.find('\n', i);
      if (j == std::string::npos) j = n;
      out.comments.push_back({s.substr(i + 2, j - i - 2), line});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = s.find("*/", i + 2);
      if (j == std::string::npos) j = n;
      out.comments.push_back({s.substr(i + 2, j - i - 2), start_line});
      for (std::size_t k = i; k < std::min(j + 2, n); ++k) {
        if (s[k] == '\n') ++line;
      }
      i = std::min(j + 2, n);
      continue;
    }
    // Preprocessor directive: consume the logical line, record includes.
    if (c == '#' && line_start) {
      std::size_t j = i;
      std::string dir;
      while (j < n) {
        if (s[j] == '\\' && j + 1 < n && s[j + 1] == '\n') {
          ++line;
          j += 2;
          continue;
        }
        if (s[j] == '\n') break;
        dir += s[j++];
      }
      std::size_t p = dir.find_first_not_of(" \t", 1);
      if (p != std::string::npos && dir.compare(p, 7, "include") == 0) {
        std::size_t q = dir.find_first_not_of(" \t", p + 7);
        if (q != std::string::npos && (dir[q] == '<' || dir[q] == '"')) {
          const char close = dir[q] == '<' ? '>' : '"';
          std::size_t e = dir.find(close, q + 1);
          if (e != std::string::npos) {
            out.includes.push_back(
                {dir.substr(q + 1, e - q - 1), dir[q] == '<', line});
          }
        }
      }
      i = j;
      line_start = false;
      continue;
    }
    line_start = false;
    // String / char literals (contents stripped).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && s[j] != c) {
        if (s[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        if (s[j] == '\n') ++line;
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifiers (raw-string prefixes included: R"( …)").
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(s[j])) ++j;
      std::string id = s.substr(i, j - i);
      if (j < n && s[j] == '"' &&
          (id == "R" || id == "LR" || id == "uR" || id == "UR" ||
           id == "u8R")) {
        i = skip_raw_string(s, j, line);
        continue;
      }
      out.toks.push_back({Tok::kIdent, std::move(id), line});
      i = j;
      continue;
    }
    // Numbers (incl. hex, suffixes, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(s[j]) || s[j] == '\'' || s[j] == '.')) ++j;
      out.toks.push_back({Tok::kNumber, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: '::', '->', '[[' and ']]' matter to the rules;
    // everything else is a single character.
    if (i + 1 < n && ((c == ':' && s[i + 1] == ':') ||
                      (c == '-' && s[i + 1] == '>') ||
                      (c == '[' && s[i + 1] == '[') ||
                      (c == ']' && s[i + 1] == ']'))) {
      out.toks.push_back({Tok::kPunct, s.substr(i, 2), line});
      i += 2;
      continue;
    }
    out.toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

const std::string& tok_at(const std::vector<Tok>& t, std::size_t i) {
  static const std::string empty;
  return i < t.size() ? t[i].text : empty;
}

}  // namespace lap::lint
