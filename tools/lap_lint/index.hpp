// Cross-translation-unit declaration index and domain-ownership model.
//
// The sharded engine (DESIGN.md §14) partitions all simulation state into
// domains — one model domain per node, the cooperative-cache directory
// domain, and one service domain per disk — and the bit-exactness story
// rests on state owned by domain A only ever being touched from domain A,
// or handed across via Engine::post_at mail.  The index makes that
// property statically checkable: it parses every class, member and method
// out of the token stream (lex.hpp), resolves each one to an owning
// domain, and gives the domain-confinement rule (lint.cpp) the call-graph
// facts it needs to walk function bodies with a tracked "current domain".
//
// Ownership is declared with comment annotations:
//
//   // lap-owns: node|directory|disk|engine|value
//     on a class/struct declaration (the line of, or up to two lines
//     above, the `class`/`struct` keyword), or on a data member.
//
//   // lap-runs: node|directory|disk|any
//     on a method declaration or definition, naming the domain whose
//     event handlers the method runs under.  `any` marks idle-time
//     accessors (setup, teardown, test hooks) exempt from checking.
//
// Files that carry no annotation inherit a directory default (see
// dir_default_owner): src/fs is directory-owned, src/{cache,core} are
// node-owned, src/sim is the engine kernel, and the value-type layers
// (util, trace, obs, net, disk, check) default to `value` — freely
// shareable, never flagged.
//
// The parser is a structural scanner, not a compiler: it brace-matches
// the whole token stream first, then walks namespace/class/function
// scopes recursively.  It is written to be total — malformed, truncated
// or macro-mangled input produces typed `index-parse` diagnostics, never
// a crash or an unbounded loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lex.hpp"

namespace lap::lint {

/// Owning domain of a piece of state, or the run-domain of a method.
enum class Domain : std::uint8_t {
  kUnknown,    // not resolved; confinement checks skip it
  kValue,      // plain value/shared-read state — never flagged
  kEngine,     // the audited concurrency kernel (sim/)
  kNode,       // per-node model domain (node_domain(n))
  kDirectory,  // the cooperative-cache directory domain (domain 0)
  kDisk,       // per-disk service domain (disk_domain(...))
  kAny,        // lap-runs: any — idle-time code, exempt from checking
};

[[nodiscard]] const char* domain_name(Domain d);

/// True for the domains that actually own confined state.
[[nodiscard]] inline bool is_concrete(Domain d) {
  return d == Domain::kNode || d == Domain::kDirectory || d == Domain::kDisk;
}

/// Ownership default for a path under src/ ("" → kUnknown).
[[nodiscard]] Domain dir_default_owner(const std::string& rel);

struct FieldDecl {
  std::string name;
  int line = 0;
  Domain annotated = Domain::kUnknown;  // explicit lap-owns on the member
  Domain owner = Domain::kUnknown;      // resolved (see resolve_owners)
  std::vector<std::string> type_idents;  // identifiers in the declared type
  bool has_init = false;  // carries a default member initializer
  bool scalar = false;    // built-in arithmetic/pointer type (pod-init)
  bool is_const = false;  // const member: the compiler forces an init
};

struct MethodDecl {
  std::string name;
  int line = 0;
  Domain runs = Domain::kUnknown;  // explicit lap-runs, if any
};

struct ClassDecl {
  std::string name;
  std::string file;  // effective path of the declaring file
  int line = 0;
  Domain annotated = Domain::kUnknown;  // explicit lap-owns on the class
  Domain owner = Domain::kUnknown;      // resolved class owner
  std::vector<FieldDecl> fields;
  std::vector<MethodDecl> methods;
};

/// A function body eligible for confinement analysis.
struct FuncDef {
  std::string cls;   // enclosing/qualifying class name; empty = free fn
  std::string name;
  std::string file;  // effective path
  int line = 0;
  std::size_t file_idx = 0;    // which IndexedFile the body lives in
  std::size_t body_begin = 0;  // token index of the '{'
  std::size_t body_end = 0;    // token index one past the matching '}'
  bool is_ctor = false;        // constructors/destructors are exempt
  Domain runs = Domain::kUnknown;  // resolved run-domain of the body
};

/// One parsed file: a borrowed lexed token stream plus its effective
/// (possibly virtual) path and scope facts.  The Lexed must outlive the
/// Index (lint.cpp keeps all units alive for the whole run).
struct IndexedFile {
  std::string path;  // effective path, '/' separators
  std::string rel;   // path after the last "src/"; empty if outside src/
  const Lexed* lx = nullptr;
};

// Diagnostic shape shared with lint.hpp; redeclared here to keep the
// index layer free of the rule table.  lint.cpp converts.
struct ParseDiag {
  std::string file;
  int line = 0;
  std::string message;
};

/// The cross-TU index.  Feed files through index_file(), then call
/// resolve_owners() once; parse problems come back as typed ParseDiags
/// (rule "index-parse" at the lint layer), never exceptions.
struct Index {
  std::vector<IndexedFile> files;
  std::vector<ClassDecl> classes;
  std::vector<FuncDef> funcs;

  // name → index into classes; names declared more than once map to the
  // first declaration and are recorded in `ambiguous_classes`.
  std::map<std::string, std::size_t> class_by_name;
  std::vector<std::string> ambiguous_classes;

  // field name → owner, merged across every class.  A name whose
  // declarations disagree is dropped (confinement must never guess).
  std::map<std::string, Domain> field_owner;

  // function/method NAME → required run-domain, for bare-call checks.
  // Only names whose every definition agrees on one concrete domain.
  std::map<std::string, Domain> func_requires;
};

/// Parse one file's declarations into `idx` (classes, funcs).  Exposed
/// separately so the indexer robustness tests can feed it hostile input.
void index_file(Index& idx, IndexedFile file, std::vector<ParseDiag>& diags);

/// Resolve every class/field owner and function run-domain, then compute
/// the bare-call requirement table (a bounded fixpoint over the call
/// graph).  Call once after the last index_file().
void resolve_owners(Index& idx, std::vector<ParseDiag>& diags);

/// Run the interprocedural domain-confinement walk over every function
/// body in the index.  Emits (file, line, message) tuples; lint.cpp maps
/// them onto the `domain-confinement` rule and the per-file suppression
/// directives.
void check_confinement(const Index& idx, std::vector<ParseDiag>& out);

}  // namespace lap::lint
